"""Fault-injection specifications: degraded fabrics and timed failure events.

Real AI/HPC clusters rarely run on a pristine fabric: links flap, switches
are drained for maintenance, and reroutes leave capacity degraded for
minutes.  This module describes such scenarios declaratively — a
:class:`FaultSchedule` carried on
:attr:`repro.network.config.SimulationConfig.faults` — and both backends
honor it:

* the **packet backend** masks failed links out of every routing decision,
  forces in-flight packets onto surviving candidate routes at their next
  forwarding hop, and re-picks the cached route of every live flow when the
  fabric changes (see ``PacketBackend._apply_fault``),
* the **LogGOPS backend** applies a degraded-capacity latency factor: the
  per-byte serialisation term ``size * G`` is inflated by the reciprocal of
  the surviving fraction of fabric capacity, and — in topology-aware mode —
  per-message routes are filtered to alive links.

A schedule combines *static* degradation (links failed or running at reduced
bandwidth from time 0, or a seeded random failure rate) with *timed* events
(:data:`LINK_DOWN` / :data:`LINK_UP` / :data:`SWITCH_DRAIN` /
:data:`SWITCH_UNDRAIN`).  An **empty** schedule is guaranteed to leave both
backends bit-identical to a run without any fault machinery — the fault
paths are gated out entirely (``tests/test_faults.py`` locks this in).

Links are addressed by name (e.g. ``"tor0->core1"``, stable across builds of
the same topology) or by dense link id.  Random failures draw whole duplex
*cables* (both directions fail together) and only from switch-to-switch
cables: a host's NIC cable failing is indistinguishable from the host being
down, which is a scheduling problem, not a routing one.  Random draws are
*nested*: for a fixed seed, the cables failed at rate ``r1 < r2`` are a
subset of those failed at ``r2``, so degradation curves over a rate axis are
monotone by construction rather than by luck.

Determinism: event application order is part of the schedule (ties resolve
in declaration order), random draws depend only on ``failure_seed``, and all
timed events are scheduled on the backend's own event queue before any GOAL
operation is issued.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple, Union

if TYPE_CHECKING:  # avoid importing topology (and numpy) at module import
    from repro.network.topology.base import Topology

#: Timed fault event kinds.
LINK_DOWN = "link_down"
LINK_UP = "link_up"
SWITCH_DRAIN = "switch_drain"
SWITCH_UNDRAIN = "switch_undrain"

_EVENT_KINDS = (LINK_DOWN, LINK_UP, SWITCH_DRAIN, SWITCH_UNDRAIN)

#: A link selector: dense link id, or link name as reported by ``Link.name``.
LinkRef = Union[int, str]


class NetworkPartitionError(RuntimeError):
    """No surviving route between two hosts (or no surviving capacity).

    Raised by :meth:`repro.network.topology.base.Topology.alive_table` when a
    fault schedule disconnects a communicating pair, and by the LogGOPS
    backend when the surviving fabric capacity reaches zero.  The message
    names the pair, the fault epoch, the surviving-candidate count per hop
    prefix (how many candidates are still alive through their first ``k``
    hops — localizing the cut to a tier) and the failed links (capped at
    datacenter scale), so degraded-fabric experiments fail loudly and
    actionably instead of deadlocking.
    """


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: at ``time_ns``, apply ``kind`` to ``target``.

    ``target`` is a link id or link name for :data:`LINK_DOWN` /
    :data:`LINK_UP`, and a switch device id for :data:`SWITCH_DRAIN` /
    :data:`SWITCH_UNDRAIN` (draining fails every link into and out of the
    switch; undraining restores them).
    """

    time_ns: int
    kind: str
    target: LinkRef

    def __post_init__(self) -> None:
        if self.time_ns < 0:
            raise ValueError(f"fault event time must be non-negative, got {self.time_ns}")
        if self.kind not in _EVENT_KINDS:
            raise ValueError(
                f"unknown fault event kind {self.kind!r}; expected one of {_EVENT_KINDS}"
            )
        if self.kind in (SWITCH_DRAIN, SWITCH_UNDRAIN) and not isinstance(self.target, int):
            raise ValueError(
                f"{self.kind} targets a switch device id (int), got {self.target!r}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """Declarative description of an imperfect fabric.

    Attributes
    ----------
    events:
        Timed :class:`FaultEvent` records (need not be sorted; ties apply in
        declaration order).
    failed_links:
        Links down from time 0 (each a link id or link name).
    degraded_links:
        Static ``(link, capacity_factor)`` pairs: the link runs at
        ``factor`` times its configured bandwidth for the whole run
        (``0 < factor <= 1``).
    link_failure_rate:
        Fraction of switch-to-switch duplex cables failed from time 0,
        drawn with ``failure_seed``.  Draws are nested across rates for a
        fixed seed (see module docstring).
    failure_seed:
        Seed of the random cable draw.
    """

    events: Tuple[FaultEvent, ...] = ()
    failed_links: Tuple[LinkRef, ...] = ()
    degraded_links: Tuple[Tuple[LinkRef, float], ...] = ()
    link_failure_rate: float = 0.0
    failure_seed: int = 0

    def __post_init__(self) -> None:
        # normalise list inputs so callers can pass plain lists
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(self, "failed_links", tuple(self.failed_links))
        object.__setattr__(
            self, "degraded_links", tuple(tuple(pair) for pair in self.degraded_links)
        )
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise ValueError(f"events must be FaultEvent records, got {ev!r}")
        for pair in self.degraded_links:
            if len(pair) != 2:
                raise ValueError(f"degraded_links entries are (link, factor) pairs, got {pair!r}")
            _, factor = pair
            if not (0.0 < float(factor) <= 1.0):
                raise ValueError(
                    f"degraded-link capacity factor must be in (0, 1], got {factor!r}"
                )
        if not (0.0 <= self.link_failure_rate < 1.0):
            raise ValueError(
                f"link_failure_rate must be in [0, 1), got {self.link_failure_rate}"
            )
        # Contradictory timed sequences would silently drift the topology's
        # per-link failure reference counts into undefined alive-state (a
        # link "downed" twice needs two link_ups; a link_up on a healthy
        # link is a no-op that masks a schedule bug).  Reject them here, in
        # application order, best-effort at the declared-target level: a
        # link addressed once by name and once by id cannot be unified
        # without a topology and is tracked per spelling.
        link_down = {ref: True for ref in self.failed_links}
        drained: Dict[int, bool] = {}
        for ev in self.sorted_events():
            if ev.kind == LINK_DOWN:
                if link_down.get(ev.target):
                    raise ValueError(
                        f"contradictory fault schedule: {LINK_DOWN} at "
                        f"t={ev.time_ns} targets link {ev.target!r} which is "
                        f"already down at that time (schedule a {LINK_UP} for "
                        f"it first, or drop the duplicate event)"
                    )
                link_down[ev.target] = True
            elif ev.kind == LINK_UP:
                if not link_down.get(ev.target):
                    raise ValueError(
                        f"contradictory fault schedule: {LINK_UP} at "
                        f"t={ev.time_ns} targets link {ev.target!r} which is "
                        f"not down at that time (add a prior {LINK_DOWN}, or "
                        f"list it in failed_links)"
                    )
                link_down[ev.target] = False
            elif ev.kind == SWITCH_DRAIN:
                if drained.get(ev.target):
                    raise ValueError(
                        f"contradictory fault schedule: {SWITCH_DRAIN} at "
                        f"t={ev.time_ns} targets switch {ev.target} which is "
                        f"already drained at that time (schedule a "
                        f"{SWITCH_UNDRAIN} for it first)"
                    )
                drained[ev.target] = True
            elif ev.kind == SWITCH_UNDRAIN:
                if not drained.get(ev.target):
                    raise ValueError(
                        f"contradictory fault schedule: {SWITCH_UNDRAIN} at "
                        f"t={ev.time_ns} targets switch {ev.target} which is "
                        f"not drained at that time (add a prior "
                        f"{SWITCH_DRAIN})"
                    )
                drained[ev.target] = False

    def is_empty(self) -> bool:
        """True when the schedule injects nothing (the healthy-fabric case)."""
        return (
            not self.events
            and not self.failed_links
            and not self.degraded_links
            and self.link_failure_rate == 0.0
        )

    def __bool__(self) -> bool:
        return not self.is_empty()

    def sorted_events(self) -> Tuple[FaultEvent, ...]:
        """Events in application order (time, then declaration order)."""
        return tuple(sorted(self.events, key=lambda ev: ev.time_ns))

    # -- resolution against a concrete topology ------------------------------
    def static_failed_ids(self, topology: "Topology") -> List[int]:
        """Link ids down from time 0: explicit failures plus random cables."""
        ids: List[int] = []
        seen = set()
        for ref in self.failed_links:
            for link_id in resolve_link_ids(topology, ref):
                if link_id not in seen:
                    seen.add(link_id)
                    ids.append(link_id)
        for link_id in random_failed_link_ids(
            topology, self.link_failure_rate, self.failure_seed
        ):
            if link_id not in seen:
                seen.add(link_id)
                ids.append(link_id)
        return ids

    def static_degradations(self, topology: "Topology") -> Dict[int, float]:
        """Resolved ``{link id: capacity factor}`` of the static degradations."""
        out: Dict[int, float] = {}
        for ref, factor in self.degraded_links:
            for link_id in resolve_link_ids(topology, ref):
                out[link_id] = float(factor)
        return out

    def resolved_events(self, topology: "Topology") -> List[Tuple[int, str, List[int]]]:
        """Timed events as ``(time_ns, kind, link ids)`` in application order."""
        out: List[Tuple[int, str, List[int]]] = []
        for ev in self.sorted_events():
            if ev.kind in (SWITCH_DRAIN, SWITCH_UNDRAIN):
                ids = switch_link_ids(topology, int(ev.target))
            else:
                ids = resolve_link_ids(topology, ev.target)
            out.append((ev.time_ns, ev.kind, ids))
        return out

    def grouped_events(
        self, topology: "Topology"
    ) -> List[Tuple[int, List[Tuple[str, List[int]]]]]:
        """Timed events grouped into epochs: ``(time_ns, [(kind, ids), ...])``.

        Within an epoch the ``(kind, ids)`` transitions keep their
        application order (time, then declaration order — the order the
        serial engine executes same-time events in).  The sharded driver
        consumes epochs at window barriers, applying each one on every
        shard before any same-time traffic event runs, which reproduces the
        serial engine's fault-first tie-break exactly.
        """
        epochs: List[Tuple[int, List[Tuple[str, List[int]]]]] = []
        for time_ns, kind, ids in self.resolved_events(topology):
            if epochs and epochs[-1][0] == time_ns:
                epochs[-1][1].append((kind, ids))
            else:
                epochs.append((time_ns, [(kind, ids)]))
        return epochs


def resolve_link_ids(topology: "Topology", ref: LinkRef) -> List[int]:
    """Resolve a link id or link name to concrete link ids.

    Raises ``ValueError`` with the valid name inventory when the reference
    matches nothing, so CLI and config errors stay actionable.
    """
    links = topology.links
    if isinstance(ref, int):
        if not (0 <= ref < len(links)):
            raise ValueError(
                f"link id {ref} out of range (topology has {len(links)} links)"
            )
        return [ref]
    matches = [link.link_id for link in links if link.name == ref]
    if not matches:
        sample = ", ".join(link.name for link in links[: min(8, len(links))])
        raise ValueError(
            f"no link named {ref!r} in this topology "
            f"(examples of valid names: {sample}{', ...' if len(links) > 8 else ''})"
        )
    return matches


def switch_link_ids(topology: "Topology", device: int) -> List[int]:
    """Every link id into or out of ``device`` (the drain set of a switch)."""
    if not (0 <= device < topology.num_devices):
        raise ValueError(
            f"device {device} out of range (topology has {topology.num_devices} devices)"
        )
    if topology.is_host(device):
        raise ValueError(
            f"device {device} is a host, not a switch; drain targets switches "
            f"(switch ids start at {topology.num_hosts})"
        )
    return [
        link.link_id
        for link in topology.links
        if link.src == device or link.dst == device
    ]


def fabric_cables(topology: "Topology") -> List[Tuple[int, ...]]:
    """Switch-to-switch duplex cables as tuples of link ids.

    Links are grouped by their unordered ``{src, dst}`` device pair; cables
    touching a host are excluded (see module docstring).  Order is
    deterministic: by the lowest link id of each cable.
    """
    groups: Dict[Tuple[int, int], List[int]] = {}
    for link in topology.links:
        if topology.is_host(link.src) or topology.is_host(link.dst):
            continue
        key = (min(link.src, link.dst), max(link.src, link.dst))
        groups.setdefault(key, []).append(link.link_id)
    return sorted((tuple(sorted(ids)) for ids in groups.values()), key=lambda c: c[0])


def random_failed_link_ids(topology: "Topology", rate: float, seed: int) -> List[int]:
    """Link ids of the cables failed by a random ``rate`` draw.

    The seeded permutation of the eligible cables is computed once and a
    ``rate`` fraction of it (rounded down) is taken as a *prefix*, so a
    higher rate with the same seed always fails a superset of the cables a
    lower rate fails.
    """
    if rate <= 0.0:
        return []
    import numpy as np

    cables = fabric_cables(topology)
    if not cables:
        return []
    count = int(rate * len(cables))
    if count == 0:
        return []
    order = np.random.default_rng(seed).permutation(len(cables))
    ids: List[int] = []
    for idx in order[:count]:
        ids.extend(cables[int(idx)])
    return ids


__all__ = [
    "LINK_DOWN",
    "LINK_UP",
    "SWITCH_DRAIN",
    "SWITCH_UNDRAIN",
    "FaultEvent",
    "FaultSchedule",
    "NetworkPartitionError",
    "fabric_cables",
    "random_failed_link_ids",
    "resolve_link_ids",
    "switch_link_ids",
]

"""Host compute model shared by all backends.

GOAL ``calc`` vertices and the per-message CPU overheads (LogGOPS ``o`` and
``O``) execute on *compute streams*: independent serial resources per rank
(paper §2.1 — ops on different streams may overlap, ops on the same stream
serialise).  Both the message-level and the packet-level backend need the
same bookkeeping, so it lives here.

The model is intentionally simple and non-preemptive: a stream executes work
items back-to-back in the order they are reserved.  This matches LogGOPSim's
behaviour and is sufficient for the paper's accuracy targets.
"""
from __future__ import annotations

from typing import Dict, Tuple


class HostCompute:
    """Tracks per-rank, per-stream CPU availability.

    All times are integer nanoseconds.  Streams are created lazily on first
    use; an unused stream is free at time 0.
    """

    __slots__ = ("_free_at", "busy_ns")

    def __init__(self) -> None:
        # (rank, stream) -> time at which the stream becomes free
        self._free_at: Dict[Tuple[int, int], int] = {}
        # (rank) -> total busy nanoseconds accumulated (for utilisation stats)
        self.busy_ns: Dict[int, int] = {}

    def free_at(self, rank: int, stream: int) -> int:
        """Time at which ``stream`` of ``rank`` becomes free."""
        return self._free_at.get((rank, stream), 0)

    def reserve(self, rank: int, stream: int, earliest: int, duration: int) -> Tuple[int, int]:
        """Reserve ``duration`` ns on ``(rank, stream)`` not earlier than ``earliest``.

        Returns ``(start, end)`` of the reserved interval and marks the stream
        busy until ``end``.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        key = (rank, stream)
        start = max(earliest, self._free_at.get(key, 0))
        end = start + duration
        self._free_at[key] = end
        if duration:
            self.busy_ns[rank] = self.busy_ns.get(rank, 0) + duration
        return start, end

    def rank_finish_time(self, rank: int) -> int:
        """Latest time any stream of ``rank`` is busy until."""
        return max(
            (t for (r, _), t in self._free_at.items() if r == rank),
            default=0,
        )

    def reset(self) -> None:
        """Forget all reservations (used when a backend is reused)."""
        self._free_at.clear()
        self.busy_ns.clear()

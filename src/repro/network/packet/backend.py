"""Packet-level backend implementing the unified ATLAHS backend API.

The backend owns

* the topology and one link queue per directed link — by default the
  :class:`~repro.network.packet.linkqueue.BurstLinkQueue`, which serialises
  a burst of packets arithmetically and fires exactly one event per packet
  (its delivery); ``SimulationConfig.packet_batching=False`` selects the
  legacy event-per-transmission :class:`~repro.network.packet.linkqueue.
  LinkQueue` used by the A/B determinism tests,
* a :class:`~repro.network.routing.RoutingStrategy` that picks each flow's
  route at injection time from the topology's memoized route tables
  (minimal/ECMP, Valiant, or UGAL-style adaptive fed by live queue
  occupancy exposed as a numpy array view),
* one :class:`~repro.network.packet.flow.Flow` per GOAL send,
* per-flow congestion control (sender-based MPRDMA / Swift / DCTCP /
  fixed-window, or receiver-driven NDP with trimming and pull pacing),
* the host compute model for ``calc`` ops and per-message host overheads,
* message matching so GOAL ``recv`` ops complete when their message has
  fully arrived.

Semantics mirror the message-level backend where they overlap: a ``send`` op
completes *locally* once its last byte has been handed to the sender's
uplink (so chained chunk sends pipeline rather than serialise on round
trips), while the message itself counts as delivered when the last data
packet reaches the destination host — that instant feeds both the matching
``recv`` and the MCT statistics.

Hot path
--------
One scheduler event (a window opening on an ACK, a flow becoming ready)
advances a flow's whole contiguous packet train: the injection loop enqueues
every packet the window allows, and the burst queue turns each into a single
delivery event with an arithmetically computed timestamp.  Packet objects
are pooled (``__slots__`` records reused through a free list), per-pair
routes and RTTs are cached, and per-size serialisation times are memoized —
see ``docs/performance.md`` for measurements.
"""
from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.network.backend import (
    CompletionCallback,
    JobStats,
    MessageRecord,
    NetworkBackend,
    NetworkStats,
    assemble_job_stats,
)
from repro.network.config import SimulationConfig
from repro.network.congestion import create_congestion_control
from repro.network.events import EventQueue
from repro.network.faults import LINK_DOWN, SWITCH_DRAIN, NetworkPartitionError
from repro.network.host import HostCompute
from repro.network.matching import MessageMatcher
from repro.network.packet.flow import Flow
from repro.network.packet.linkqueue import BurstLinkQueue, LinkQueue
from repro.network.packet.packet import ACK, DATA, NACK, PULL, Packet
from repro.network.routing import create_routing
from repro.network.topology import build_topology


class _PendingRecv:
    """A GOAL recv waiting for its message to fully arrive."""

    __slots__ = ("op_id", "rank", "stream", "post_time")

    def __init__(self, op_id: int, rank: int, stream: int, post_time: int) -> None:
        self.op_id = op_id
        self.rank = rank
        self.stream = stream
        self.post_time = post_time


class _PullPacer:
    """Per-host pacer that emits NDP pull credits at the host's link rate.

    Pacing is tracked in cumulative byte-time from the pacer's activation
    (``epoch``): the k-th pull of an active burst is emitted at
    ``epoch + round(k * mtu / bandwidth)``, the same integer-ns byte-time
    arithmetic the link queues use.  The legacy per-gap formula
    ``max(1, round(mtu / bandwidth))`` accumulated up to one nanosecond of
    error per pull at high link bandwidths (and clamped sub-ns gaps to a
    full nanosecond); the cumulative form keeps the long-run pull rate exact.
    """

    __slots__ = ("queue", "active", "epoch", "emitted")

    def __init__(self) -> None:
        self.queue: Deque[Flow] = deque()
        self.active = False
        self.epoch = 0
        self.emitted = 0


class PacketBackend(NetworkBackend):
    """Packet-level simulator with queues, ECN, drops/trims and CC."""

    name = "htsim"

    def __init__(self) -> None:
        self._configured = False

    # ------------------------------------------------------------------ setup
    def setup(self, num_ranks: int, config: SimulationConfig) -> None:
        if num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self.num_ranks = num_ranks
        self.config = config
        self.events = EventQueue()
        self.host = HostCompute()
        self.matcher = MessageMatcher()
        self.rng = np.random.default_rng(config.seed)
        self.topology = build_topology(config, num_ranks)
        self.topology.set_route_cache_budget(config.route_cache_entries)
        self.topology.use_synthesis = config.route_synthesis
        self.routing = create_routing(
            config.routing, self.topology, self.rng, use_cache=config.route_caching
        )
        # fault injection (see repro.network.faults): static degradations are
        # applied before the link queues capture bandwidths, static failures
        # before any route is picked, and timed events are scheduled ahead of
        # every GOAL operation so same-time ties apply the fault first.  With
        # an empty schedule every fault path below is gated off entirely.
        self._faults = config.faults
        self._faults_enabled = bool(self._faults)
        self._fault_mask: Optional["np.ndarray"] = None
        if self._faults_enabled:
            for link_id, factor in self._faults.static_degradations(self.topology).items():
                self.topology.degrade_link(link_id, factor)
            static = self._faults.static_failed_ids(self.topology)
            if static:
                self.topology.fail_links(static)
                self._fault_mask = self.topology.alive_mask()
            self._schedule_fault_events()
        # control-plane convergence (see repro.network.control_plane): under
        # "oracle" (the default) no ControlPlane object exists and every
        # fault path below is byte-identical to the legacy instantaneous
        # behaviour.  Under "dv"/"ls" the control plane is created *after*
        # static failures so switch views boot converged, and fault events
        # take the stale-table path instead.
        self._cp = None
        self._cp_stale = 0
        self.convergence_events: List = []
        if config.control_plane != "oracle":
            from repro.network.control_plane import create_control_plane

            self._cp = create_control_plane(
                config.control_plane,
                self.topology,
                propagation_delay_ns=config.cp_propagation_ns,
                processing_delay_ns=config.cp_processing_ns,
            )
            self._host_attach = [
                self.topology.attachment(h) for h in range(num_ranks)
            ]
        self.stats = NetworkStats()
        self._batching = config.packet_batching
        kmin = int(config.ecn_kmin_frac * config.buffer_size)
        kmax = int(config.ecn_kmax_frac * config.buffer_size)
        self._stream_heads: List[Tuple[int, int, int]] = []
        if self._batching:
            self.queues = [
                BurstLinkQueue(
                    link,
                    self.events,
                    self.stats,
                    capacity=config.buffer_size,
                    kmin=kmin,
                    kmax=kmax,
                    rng=self.rng,
                )
                for link in self.topology.links
            ]
            for q in self.queues:
                q._streams = self._stream_heads
        else:
            self.queues = [
                LinkQueue(
                    link,
                    self.events,
                    self.stats,
                    self._on_link_delivery,
                    capacity=config.buffer_size,
                    kmin=kmin,
                    kmax=kmax,
                    rng=self.rng,
                )
                for link in self.topology.links
            ]
        self.flows: List[Flow] = []
        self.records: List[MessageRecord] = []
        self.rank_finish: List[int] = [0] * num_ranks
        self.pull_pacers: Dict[int, _PullPacer] = {}
        self._pull_bytes = config.mtu
        self._pull_bandwidth = config.link_bandwidth
        self._pull_credits: Dict[int, int] = {}
        self._needs_load = self.routing.needs_link_load
        self._load_view = (
            np.zeros(len(self.topology.links), dtype=np.int64) if self._needs_load else None
        )
        # (route, ack_route) -> base RTT, bounded like the per-pair route
        # caches: its key space is O(pairs x candidates)
        from repro.network.topology.base import LruCache

        self._rtt_cache = LruCache(config.route_cache_entries)
        self._packet_free: List[Packet] = []
        # multi-job attribution (observational only; see SimulationConfig)
        self._job_stride = config.job_tag_stride
        # job id -> [messages_delivered, bytes_delivered]
        self._job_msgs: Dict[int, List[int]] = {}
        # job id -> per-link bytes array (None when attribution is off, so
        # the per-packet hot path pays a single predicate)
        self._job_link_bytes: Optional[Dict[int, "np.ndarray"]] = (
            {} if self._job_stride else None
        )
        # hot counters kept as plain ints and folded into stats on collect
        self._n_sent = 0
        self._n_delivered = 0
        self._n_acks = 0
        self._on_complete: Optional[CompletionCallback] = None
        self._configured = True

    def _require_setup(self) -> None:
        if not self._configured:
            raise RuntimeError("backend used before setup() was called")

    # ----------------------------------------------------------------- issuing
    def issue_calc(self, rank: int, stream: int, duration_ns: int, op_id: int, ready_time: int) -> None:
        # inlined HostCompute.reserve (see the LogGOPS backend's issue_calc)
        if duration_ns < 0:
            raise ValueError("duration must be non-negative")
        host = self.host
        free = host._free_at
        key = (rank, stream)
        start = free.get(key, 0)
        if start < ready_time:
            start = ready_time
        end = start + duration_ns
        free[key] = end
        if duration_ns:
            busy = host.busy_ns
            busy[rank] = busy.get(rank, 0) + duration_ns
        self.events.schedule(end, self._complete_op, (rank, op_id))

    def issue_send(
        self, rank: int, dst: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        self.events.schedule(ready_time, self._start_flow, (rank, dst, size, tag, stream, op_id))

    def issue_recv(
        self, rank: int, src: int, size: int, tag: int, stream: int, op_id: int, ready_time: int
    ) -> None:
        self.events.schedule(ready_time, self._post_recv, (rank, src, size, tag, stream, op_id))

    # ------------------------------------------------------------------- flows
    def _link_load(self, link_id: int) -> int:
        """Live queue occupancy of a link (legacy callable form)."""
        return self.queues[link_id].queued_bytes

    def _link_load_view(self) -> "np.ndarray":
        """Queue occupancy of every link as an array indexed by link id.

        Queues with no departure earlier than ``now`` need no drain, so the
        common idle/fresh case is a slot read instead of a method call.
        """
        now = self.events.now
        view = self._load_view
        for i, q in enumerate(self.queues):
            view[i] = q.occupancy(now) if q.head_depart < now else q.queued_bytes
        return view

    def _pick_route(self, src: int, dst: int, size: int = 0) -> Tuple[int, ...]:
        # control-plane convergence: route with the *belief* of the source's
        # first-hop switch while any switch view is stale.  A view equal to
        # the truth takes the normal (memoized alive-table) path.
        cp = self._cp
        if cp is not None and self._cp_stale:
            view = cp.view_key(self._host_attach[src])
            if view != self.topology.failed_links:
                load = None
                if self._needs_load:
                    load = (
                        self._link_load_view() if self._batching else self._link_load
                    )
                return self.routing.select_route(src, dst, size, load, view)
        if not self._needs_load:
            return self.routing.select_route(src, dst, size, None)
        if self._batching:
            return self.routing.select_route(src, dst, size, self._link_load_view())
        return self.routing.select_route(src, dst, size, self._link_load)

    def _base_rtt(self, route: Tuple[int, ...], ack_route: Tuple[int, ...]) -> int:
        key = (route, ack_route)
        rtt = self._rtt_cache.get(key)
        if rtt is not None:
            return rtt
        cfg = self.config
        links = self.topology.links
        prop = self.topology.route_latency(route)
        prop_back = self.topology.route_latency(ack_route)
        ser = sum(max(1, int(round(cfg.mtu / links[l].bandwidth))) for l in route)
        ser_back = sum(
            max(1, int(round(cfg.ack_size / links[l].bandwidth))) for l in ack_route
        )
        rtt = prop + prop_back + ser + ser_back
        self._rtt_cache.put(key, rtt)
        return rtt

    def _alloc_packet(
        self, flow: Flow, kind: int, seq: int, size: int, route: Tuple[int, ...], sent_time: int
    ) -> Packet:
        free = self._packet_free
        if free:
            return free.pop().reset(flow, kind, seq, size, route, sent_time)
        return Packet(flow, kind, seq, size, route, sent_time=sent_time)

    def _start_flow(self, time: int, payload: Any) -> None:
        rank, dst, size, tag, stream, op_id = payload
        cfg = self.config
        _, overhead_end = self.host.reserve(rank, stream, time, cfg.host_overhead)
        route = self._pick_route(rank, dst, size)
        ack_route = self._pick_route(dst, rank, cfg.ack_size)
        cc = create_congestion_control(
            cfg.cc_algorithm,
            mtu=cfg.mtu,
            initial_window_packets=cfg.initial_window_packets,
            base_rtt_ns=self._base_rtt(route, ack_route),
        )
        flow = Flow(
            flow_id=len(self.flows),
            src=rank,
            dst=dst,
            size=size,
            tag=tag,
            op_id=op_id,
            stream=stream,
            post_time=time,
            mtu=cfg.mtu,
            cc=cc,
            route=route,
            ack_route=ack_route,
        )
        flow.route_q0 = self.queues[route[0]]
        flow.ack_q0 = self.queues[ack_route[0]]
        if self._job_stride:
            flow.job = tag // self._job_stride
        self.flows.append(flow)
        self.events.schedule(overhead_end, self._flow_ready, flow)

    def _flow_ready(self, time: int, flow: Flow) -> None:
        if flow.cc.receiver_driven:
            # NDP: blast the initial window at line rate, the rest is pulled.
            burst = min(flow.cc.initial_window_packets, flow.num_packets)
            for _ in range(burst):
                seq = flow.next_seq_to_send()
                if seq is None:
                    break
                self._send_data_packet(flow, seq, time)
        else:
            self._try_send(flow, time)

    def _try_send(self, flow: Flow, now: int) -> None:
        """Advance the flow's packet train as far as the window allows.

        With the burst queue this whole loop costs one heap operation per
        injected packet — the train is serialised arithmetically, so a
        single ACK event can open the window and launch a contiguous burst
        without any per-packet transmission events.
        """
        cc = flow.cc
        if cc.receiver_driven:
            return
        # the window cannot change inside the loop (no feedback is processed
        # here), so hoist the byte budget out of the per-packet check
        window = cc.window_bytes()
        mtu = cc.mtu
        while flow.has_retransmissions() or flow.has_unsent_data():
            inflight = flow.inflight_bytes
            if inflight + mtu > window and inflight != 0:
                return
            seq = flow.next_seq_to_send()
            if seq is None:
                return
            self._send_data_packet(flow, seq, now)

    def _send_data_packet(self, flow: Flow, seq: int, now: int, retransmission: bool = False) -> None:
        size = flow.mtu if seq != flow.num_packets - 1 else flow.last_packet_size
        free = self._packet_free
        if free:
            pkt = free.pop().reset(flow, DATA, seq, size, flow.route, now)
        else:
            pkt = Packet(flow, DATA, seq, size, flow.route, sent_time=now)
        flow.inflight_bytes += size
        if flow.trimmable:
            # only the NDP pull path reads per-seq send times; skip the dict
            # write for sender-driven transports (the packet carries its own)
            flow.sent_times[seq] = now
        self._n_sent += 1
        if retransmission:
            self.stats.retransmissions += 1
        jlb = self._job_link_bytes
        if jlb is not None:
            arr = jlb.get(flow.job)
            if arr is None:
                arr = jlb[flow.job] = np.zeros(len(self.queues), dtype=np.int64)
            for link in flow.route:
                arr[link] += size
        accepted = flow.route_q0.enqueue(pkt, now)
        if not accepted:
            self._handle_data_drop(pkt, now)
            if self._batching:
                self._packet_free.append(pkt)
        if (
            not flow.send_op_completed
            and flow.all_injected()
            and not flow.has_retransmissions()
        ):
            flow.send_op_completed = True
            self._complete_op(now, (flow.src, flow.op_id))

    # --------------------------------------------------------------- forwarding
    def _on_link_delivery(self, packet: Packet, now: int) -> None:
        """Legacy-mode delivery; forward or consume ``packet`` (no pooling)."""
        packet.hop += 1
        if packet.hop < len(packet.route):
            if (
                self._faults_enabled
                and packet.kind == DATA
                and self._masked(packet.route, packet.hop)
                and not self._fault_forward(packet, packet.hop, now)
            ):
                return
            next_queue = self.queues[packet.route[packet.hop]]
            accepted = next_queue.enqueue(packet, now)
            if not accepted:
                self._handle_data_drop(packet, now)
            return
        if packet.kind == DATA:
            self._handle_data_arrival(packet, now)
        elif packet.kind == ACK:
            self._handle_ack(packet, now)
        elif packet.kind == NACK:
            self._handle_nack(packet, now)
        elif packet.kind == PULL:
            self._handle_pull(packet, now)

    def _handle_data_drop(self, packet: Packet, now: int) -> None:
        """A data packet was dropped: notify the sender after a timeout."""
        flow = packet.flow
        self.events.schedule(
            now + self.config.min_retransmit_timeout, self._on_loss_timeout, (flow, packet.seq)
        )

    def _on_loss_timeout(self, now: int, payload: Tuple[Flow, int]) -> None:
        flow, seq = payload
        if seq in flow.acked:
            return
        size = flow.packet_size(seq)
        flow.inflight_bytes = max(0, flow.inflight_bytes - size)
        flow.cc.on_loss()
        if flow.mark_for_retransmission(seq):
            if flow.cc.receiver_driven:
                self._sender_pull_kick(flow, now)
            else:
                seq_to_send = flow.next_seq_to_send()
                if seq_to_send is not None:
                    self._send_data_packet(flow, seq_to_send, now, retransmission=True)

    # ------------------------------------------------------------------ faults
    def _schedule_fault_events(self) -> None:
        """Self-schedule every timed fault event on the local event queue.

        Overridable: the sharded engine's driver owns the fault clock
        instead, folding epoch times into the lookahead-window bounds and
        applying each epoch at the barrier on every shard (see
        :mod:`repro.network.packet.sharded`).
        """
        for time_ns, kind, ids in self._faults.resolved_events(self.topology):
            self.events.schedule(time_ns, self._apply_fault, (kind, ids))

    def _fault_flow_live(self, flow: Flow) -> bool:
        """Whether a fault/learn event should re-pick ``flow``'s route.

        The serial engine uses delivery knowledge (a fully delivered message
        needs no routing).  The sharded engine overrides this with a
        sender-observed predicate because delivery happens on the
        destination's shard.
        """
        return not flow.message_delivered

    def _fault_repick(self, flow: Flow) -> None:
        """Re-pick ``flow``'s route after a fabric change (fault or learn).

        Overridable: the sharded engine wraps the pick in a flow-keyed RNG
        stream so ECMP/Valiant ties stay shard-count-invariant, and marks
        the flow so replicas stop trusting their shipped route.
        """
        flow.route = self._pick_route(flow.src, flow.dst, flow.size)
        flow.route_q0 = self.queues[flow.route[0]]

    def _reroute_pick(self, pkt: Packet, hop: int, now: int, n: int) -> int:
        """Tie-break index among ``n`` surviving reroute candidates.

        Serial: the backend's event-order-consumed RNG (mirrors injection
        ECMP).  Sharded override: a draw keyed by the packet's simulated
        identity, invariant under shard layout.
        """
        return int(self.rng.integers(n))

    def _apply_fault(self, time: int, payload: Tuple[str, List[int]]) -> None:
        """Apply one timed fault event and invalidate every affected route.

        Failing links bumps the topology's fault epoch (dropping its
        memoized alive tables), refreshes the shared alive mask, and
        re-picks the cached route of every live flow whose current route
        crosses a failed link — so retransmissions and still-unsent packets
        immediately use surviving candidates.  A live flow whose pair has no
        surviving candidate raises
        :class:`~repro.network.faults.NetworkPartitionError`.
        """
        kind, ids = payload
        topology = self.topology
        if kind in (LINK_DOWN, SWITCH_DRAIN):
            topology.fail_links(ids)
        else:
            topology.restore_links(ids)
        mask = topology.alive_mask()
        self._fault_mask = mask
        cp = self._cp
        if cp is not None:
            # convergent control plane: no flow learns anything yet.  The
            # advertisement wave is originated over the post-event surviving
            # switch graph and every switch's view (plus its sources' flows)
            # updates only when the wave reaches it.
            record, learn = cp.originate(time, kind, ids)
            self.convergence_events.append(record)
            groups: Dict[int, List[int]] = {}
            for sw, t in learn.items():
                groups.setdefault(t, []).append(sw)
            for t in sorted(groups):
                self._cp_stale += 1
                self.events.schedule(
                    t, self._cp_switch_learn, (kind, tuple(ids), tuple(groups[t]))
                )
            return
        if mask is None:
            return
        for flow in self.flows:
            if not self._fault_flow_live(flow):
                continue
            for link in flow.route:
                if not mask[link]:
                    self._fault_repick(flow)
                    break

    def _cp_switch_learn(self, time: int, payload: Tuple[str, Tuple[int, ...], Tuple[int, ...]]) -> None:
        """One learn-time group of the convergence wave reaches its switches.

        The switches' views absorb the event, and — modelling ECMP table
        re-hash churn — every live flow whose source attaches to a switch
        that just learned gets its route re-picked under the refreshed view
        (not only flows that crossed a failed link: reconvergence rebuilds
        the hash buckets, perturbing placement across the board).
        """
        kind, ids, switches = payload
        cp = self._cp
        cp.apply(switches, kind, ids)
        self._cp_stale -= 1
        learned = set(switches)
        attach = self._host_attach
        for flow in self.flows:
            if not self._fault_flow_live(flow):
                continue
            if attach[flow.src] in learned:
                self._fault_repick(flow)

    def _reroute_packet(self, pkt: Packet, hop: int, now: int) -> bool:
        """Force an in-flight DATA packet onto a surviving candidate route.

        The new route must share the packet's already-traversed link prefix
        (``pkt.route[:hop]``); ties among surviving candidates break with
        the backend RNG, mirroring injection-time ECMP.  Returns ``False``
        when no candidate shares the prefix — the packet is stranded at a
        device with no alive continuation and is dropped (its flow recovers
        it by loss timeout over the flow's re-picked route).
        """
        flow = pkt.flow
        try:
            candidates = self.topology.alive_table(flow.src, flow.dst).candidates
        except NetworkPartitionError:
            # only reachable for stragglers of already-delivered flows
            # (_apply_fault raises for live flows on partitioned pairs)
            candidates = ()
        prefix = pkt.route[:hop]
        matching = [r for r in candidates if r[:hop] == prefix]
        if not matching:
            self.stats.packets_lost_to_faults += 1
            self._handle_data_drop(pkt, now)
            return False
        if len(matching) == 1:
            route = matching[0]
        else:
            route = matching[self._reroute_pick(pkt, hop, now, len(matching))]
        pkt.route = route
        pkt.hops = len(route)
        self.stats.packets_rerouted += 1
        return True

    def _fault_forward(self, pkt: Packet, hop: int, now: int) -> bool:
        """Forward-time fault handling for a DATA packet crossing a failure.

        Under the oracle control plane this is exactly :meth:`_reroute_packet`
        (local repair everywhere, instantly).  Under a convergent control
        plane the switch holding the packet repairs only if its view already
        contains the dead link; a stale switch forwards into the black hole —
        the packet is dropped, counted as ``packets_blackholed``, and its
        flow recovers it by loss timeout (re-black-holing until the source's
        first-hop switch reconverges, which is what makes convergence loss
        grow with propagation delay).  Returns whether the packet survives.
        """
        cp = self._cp
        if cp is not None and self._cp_stale:
            switch = self.topology.links[pkt.route[hop - 1]].dst
            if not cp.knows(switch, pkt.route, hop, self._fault_mask):
                self.stats.packets_blackholed += 1
                self._handle_data_drop(pkt, now)
                return False
        return self._reroute_packet(pkt, hop, now)

    def _masked(self, route: Tuple[int, ...], hop: int) -> bool:
        """Whether any remaining hop of ``route`` crosses a failed link."""
        mask = self._fault_mask
        if mask is None:
            return False
        for link in route[hop:]:
            if not mask[link]:
                return True
        return False

    # ------------------------------------------------------------ receiver side
    def _handle_data_arrival(self, packet: Packet, now: int) -> None:
        flow = packet.flow
        cfg = self.config
        if packet.trimmed:
            # NDP: the payload was cut; NACK the sequence and pull a retransmit.
            self._send_control(flow, NACK, packet.seq, flow.ack_route, now)
            self._request_pull(flow, now)
            return

        self._n_delivered += 1
        new = flow.on_data_received(packet.seq, packet.size)
        # acknowledge (echo ECN mark and the original send time for RTT)
        free = self._packet_free
        if free:
            ack = free.pop().reset(flow, ACK, packet.seq, cfg.ack_size, flow.ack_route, packet.sent_time)
        else:
            ack = Packet(flow, ACK, packet.seq, cfg.ack_size, flow.ack_route, sent_time=packet.sent_time)
        ack.ecn = packet.ecn
        self._n_acks += 1
        flow.ack_q0.enqueue(ack, now)

        if flow.cc.receiver_driven and not flow.fully_received():
            self._request_pull(flow, now)

        if new and flow.fully_received() and not flow.message_delivered:
            flow.message_delivered = True
            self.stats.messages_delivered += 1
            self.stats.bytes_delivered += flow.size
            if self._job_stride:
                per_job = self._job_msgs.setdefault(flow.job, [0, 0])
                per_job[0] += 1
                per_job[1] += flow.size
            if cfg.collect_message_records:
                self.records.append(
                    MessageRecord(flow.src, flow.dst, flow.size, flow.tag, flow.post_time, now)
                )
            matched = self.matcher.post_arrival(flow.src, flow.dst, flow.tag, now)
            if matched is not None:
                self._complete_recv(matched, now)

    def _post_recv(self, time: int, payload: Any) -> None:
        rank, src, size, tag, stream, op_id = payload
        recv = _PendingRecv(op_id, rank, stream, time)
        arrival_time = self.matcher.post_recv(src, rank, tag, recv)
        if arrival_time is not None:
            self._complete_recv(recv, max(arrival_time, time))

    def _complete_recv(self, recv: _PendingRecv, arrival_time: int) -> None:
        earliest = max(arrival_time, recv.post_time)
        _, end = self.host.reserve(recv.rank, recv.stream, earliest, self.config.host_overhead)
        self.events.schedule(end, self._complete_op, (recv.rank, recv.op_id))

    # -------------------------------------------------------------- sender side
    def _handle_ack(self, packet: Packet, now: int) -> None:
        flow = packet.flow
        freed = flow.on_ack(packet.seq)
        if freed:
            rtt = now - packet.sent_time
            flow.cc.on_ack(freed, packet.ecn, rtt if rtt > 0 else 1)
            self._try_send(flow, now)

    def _handle_nack(self, packet: Packet, now: int) -> None:
        flow = packet.flow
        size = flow.packet_size(packet.seq)
        flow.inflight_bytes = max(0, flow.inflight_bytes - size)
        flow.cc.on_loss()
        flow.mark_for_retransmission(packet.seq)
        self._sender_pull_kick(flow, now)

    def _handle_pull(self, packet: Packet, now: int) -> None:
        flow = packet.flow
        self._pull_credits[flow.flow_id] = self._pull_credits.get(flow.flow_id, 0) + 1
        self._sender_pull_kick(flow, now)

    def _sender_pull_kick(self, flow: Flow, now: int) -> None:
        """Spend banked pull credits on whatever the flow can currently send."""
        credits = self._pull_credits.get(flow.flow_id, 0)
        while credits > 0 and (flow.has_retransmissions() or flow.has_unsent_data()):
            seq = flow.next_seq_to_send()
            if seq is None:
                break
            retransmission = seq in flow.sent_times
            self._send_data_packet(flow, seq, now, retransmission=retransmission)
            credits -= 1
        self._pull_credits[flow.flow_id] = credits

    # --------------------------------------------------------------- NDP pulls
    def _request_pull(self, flow: Flow, now: int) -> None:
        """Receiver-side: ask the per-host pacer to emit one pull for ``flow``."""
        pacer = self.pull_pacers.setdefault(flow.dst, _PullPacer())
        pacer.queue.append(flow)
        if not pacer.active:
            pacer.active = True
            pacer.epoch = now
            pacer.emitted = 0
            self.events.schedule(now, self._emit_pull, flow.dst)

    def _emit_pull(self, now: int, host: int) -> None:
        pacer = self.pull_pacers[host]
        if not pacer.queue:
            pacer.active = False
            return
        flow = pacer.queue.popleft()
        self._send_control(flow, PULL, 0, flow.ack_route, now)
        pacer.emitted += 1
        if pacer.queue:
            # cumulative byte-time pacing: pull k of this burst goes out at
            # epoch + round(k * mtu / bandwidth), never drifting off rate
            next_t = pacer.epoch + int(
                round(pacer.emitted * self._pull_bytes / self._pull_bandwidth)
            )
            self.events.schedule(next_t if next_t > now else now, self._emit_pull, host)
        else:
            pacer.active = False

    def _send_control(self, flow: Flow, kind: int, seq: int, route: Tuple[int, ...], now: int) -> None:
        pkt = self._alloc_packet(flow, kind, seq, self.config.ack_size, route, now)
        self.queues[route[0]].enqueue(pkt, now)

    # ------------------------------------------------------------- completions
    def _complete_op(self, time: int, payload: Tuple[int, int]) -> None:
        rank, op_id = payload
        if time > self.rank_finish[rank]:
            self.rank_finish[rank] = time
        on_complete = self._on_complete
        if on_complete is not None:
            on_complete(time, rank, op_id)

    # -------------------------------------------------------------------- run
    def run(self, on_complete: CompletionCallback) -> int:
        self._require_setup()
        self._on_complete = on_complete
        if not self._batching:
            return self.events.run()
        return self._run_merged()

    def _run_merged(self, until: Optional[int] = None) -> int:
        """Specialized event loop for the burst engine.

        Per-queue deliveries are already time-sorted FIFOs, so instead of
        funnelling every delivery through the global heap the loop merges
        the per-queue streams with a heap of at most one head entry per
        link, and drains consecutive same-queue deliveries with no heap
        traffic at all.  Handler events stay on the (now tiny) EventQueue
        heap.  The interleaving realised here is exactly the canonical
        ``(time, klass, depart, link)`` order of
        :class:`~repro.network.events.EventQueue`, which the A/B
        determinism tests verify against the legacy engine.

        When ``until`` is given the loop stops *before* executing any event
        scheduled after it (events at exactly ``until`` still run), leaving
        the clock at the last executed event — the sharded engine advances
        each shard to its lookahead window edge this way and resumes the
        loop after the barrier.
        """
        from heapq import heappop, heappush

        events = self.events
        heap = events._heap
        streams = self._stream_heads
        queues = self.queues
        free_append = self._packet_free.append
        handle_arrival = self._handle_data_arrival
        handle_nack = self._handle_nack
        handle_pull = self._handle_pull
        handle_drop = self._handle_data_drop
        try_send = self._try_send
        faults_enabled = self._faults_enabled
        bounded = until is not None
        executed = 0
        while True:
            st = streams[0][0] if streams else None
            if heap and (st is None or heap[0][0] <= st):
                if bounded and heap[0][0] > until:
                    break
                # handler events run first on timestamp ties (klass 0 < 1)
                entry = heappop(heap)
                t = entry[0]
                events._now = t
                entry[3](t, entry[4])
                executed += 1
                continue
            if st is None:
                break
            if bounded and st > until:
                break
            t, depart, link = heappop(streams)
            q = queues[link]
            out = q.out
            lat = q.latency
            while True:
                pkt = out.popleft()
                events._now = t
                executed += 1
                hop = pkt.hop + 1
                pkt.hop = hop
                if hop < pkt.hops:
                    # fault path: a DATA packet whose remaining hops cross a
                    # failed link is forced onto a surviving candidate (or
                    # dropped when stranded); control packets are immune to
                    # faults, like they are to queue drops
                    if (
                        faults_enabled
                        and pkt.kind == DATA
                        and self._masked(pkt.route, hop)
                        and not self._fault_forward(pkt, hop, t)
                    ):
                        free_append(pkt)
                    elif not queues[pkt.route[hop]].enqueue(pkt, t):
                        handle_drop(pkt, t)
                        free_append(pkt)
                else:
                    kind = pkt.kind
                    if kind == DATA:
                        handle_arrival(pkt, t)
                    elif kind == ACK:
                        # inlined _handle_ack / Flow.on_ack (hot: one per
                        # delivered data packet)
                        flow = pkt.flow
                        seq = pkt.seq
                        acked = flow.acked
                        if seq not in acked:
                            acked.add(seq)
                            freed = (
                                flow.mtu
                                if seq != flow.num_packets - 1
                                else flow.last_packet_size
                            )
                            ib = flow.inflight_bytes - freed
                            flow.inflight_bytes = ib if ib > 0 else 0
                            rtt = t - pkt.sent_time
                            flow.cc.on_ack(freed, pkt.ecn, rtt if rtt > 0 else 1)
                            try_send(flow, t)
                    elif kind == NACK:
                        handle_nack(pkt, t)
                    else:
                        handle_pull(pkt, t)
                    free_append(pkt)
                if not out:
                    q.live = False
                    break
                nd = out[0].depart
                nt = nd + lat
                if bounded and nt > until:
                    heappush(streams, (nt, nd, link))
                    break
                # keep draining this stream only while its next delivery
                # precedes every other pending event (handlers win ties)
                if heap and heap[0][0] <= nt:
                    heappush(streams, (nt, nd, link))
                    break
                if streams and (nt, nd, link) >= streams[0]:
                    heappush(streams, (nt, nd, link))
                    break
                t = nt
        events.executed += executed
        return events._now

    def now(self) -> int:
        self._require_setup()
        return self.events.now

    def collect_stats(self) -> NetworkStats:
        self._require_setup()
        # fold the hot plain-int counters back in (assignment, so repeated
        # collect_stats calls stay idempotent)
        self.stats.packets_sent = self._n_sent
        self.stats.packets_delivered = self._n_delivered
        self.stats.acks_sent = self._n_acks
        drops = {
            q.link.name: q.drops for q in self.queues if q.drops
        }
        self.stats.queue_drop_events = drops
        if self.convergence_events:
            self.stats.time_to_recover_ns = max(
                r.time_to_recover_ns for r in self.convergence_events
            )
        cache = self.topology.route_cache_stats()
        self.stats.route_cache_hits = cache["hits"]
        self.stats.route_cache_misses = cache["misses"]
        self.stats.route_cache_evictions = cache["evictions"]
        return self.stats

    def convergence_report(self) -> List:
        """Per-fault-event :class:`~repro.network.control_plane.ConvergenceRecord` list.

        Empty under ``control_plane="oracle"`` (no convergence windows
        exist) and whenever no timed fault event fired.
        """
        self._require_setup()
        return self.convergence_events

    def collect_message_records(self) -> List[MessageRecord]:
        self._require_setup()
        return self.records

    def per_job_stats(self) -> Dict[int, JobStats]:
        self._require_setup()
        if not self._job_stride:
            return {}
        return assemble_job_stats(
            self._job_msgs, self._job_link_bytes, self.topology.links
        )

    # ---------------------------------------------------------------- queries
    def queue_statistics(self) -> List[Dict[str, object]]:
        """Per-link queue statistics (drops, trims, marks, peak occupancy)."""
        elapsed = max(1, self.events.now)
        return [
            {
                "link": q.link.name,
                "drops": q.drops,
                "trims": q.trims,
                "ecn_marks": q.ecn_marks,
                "max_queued_bytes": q.max_queued_bytes,
                "utilization": q.utilization(elapsed),
            }
            for q in self.queues
        ]

    def unmatched_state(self) -> Dict[str, int]:
        """Diagnostics for unmatched communication (should be all zero)."""
        return {
            "pending_recvs": self.matcher.pending_recv_count(),
            "unexpected_messages": self.matcher.pending_arrival_count(),
        }

"""Packet object used by the packet-level backend.

Packets are created in the innermost simulation loop, so the class is
slotted and carries only what the forwarding and transport logic needs.
Sizes are bytes; times are integer nanoseconds.
"""
from __future__ import annotations

from typing import Optional, Tuple

# Packet kinds
DATA = 0
ACK = 1
NACK = 2
PULL = 3

KIND_NAMES = {DATA: "data", ACK: "ack", NACK: "nack", PULL: "pull"}


class Packet:
    """A single packet in flight.

    Attributes
    ----------
    flow:
        The :class:`repro.network.packet.flow.Flow` this packet belongs to.
    kind:
        ``DATA``, ``ACK``, ``NACK`` or ``PULL``.
    seq:
        Data sequence number (packet index within the flow); for control
        packets, the sequence number being acknowledged / nacked.
    size:
        On-wire size in bytes (payload for data, header size for control and
        trimmed packets).
    route:
        Tuple of link ids from source to destination host.
    hop:
        Index into ``route`` of the link the packet is currently queued on /
        traversing.
    ecn:
        Set when any queue along the path marked the packet; echoed in the
        ACK.
    trimmed:
        True when a congested queue trimmed this data packet to a header
        (NDP); the payload is considered lost but the header still reaches
        the receiver.
    sent_time:
        Time the data packet was injected by the sender (echoed in the ACK
        for RTT measurement).
    """

    __slots__ = (
        "flow",
        "kind",
        "seq",
        "size",
        "route",
        "hop",
        "hops",
        "ecn",
        "trimmed",
        "sent_time",
        "depart",
    )

    def __init__(
        self,
        flow,
        kind: int,
        seq: int,
        size: int,
        route: Tuple[int, ...],
        sent_time: int = 0,
    ) -> None:
        self.flow = flow
        self.kind = kind
        self.seq = seq
        self.size = size
        self.route = route
        self.hop = 0
        self.hops = len(route)
        self.ecn = False
        self.trimmed = False
        self.sent_time = sent_time
        # departure instant from the link currently transmitting this packet;
        # maintained by the burst engine as part of the canonical event key
        self.depart = 0

    def reset(
        self,
        flow,
        kind: int,
        seq: int,
        size: int,
        route: Tuple[int, ...],
        sent_time: int = 0,
    ) -> "Packet":
        """Re-initialise a pooled packet in place (see the backend's pool).

        Equivalent to ``__init__``; returns ``self`` so allocation sites can
        write ``pool.pop().reset(...)``.
        """
        self.flow = flow
        self.kind = kind
        self.seq = seq
        self.size = size
        self.route = route
        self.hop = 0
        self.hops = len(route)
        self.ecn = False
        self.trimmed = False
        self.sent_time = sent_time
        return self

    @property
    def is_data(self) -> bool:
        return self.kind == DATA

    @property
    def is_control(self) -> bool:
        return self.kind != DATA

    def current_link(self) -> Optional[int]:
        """Link id the packet should traverse next, or ``None`` past the last hop."""
        if self.hop < len(self.route):
            return self.route[self.hop]
        return None

    def __repr__(self) -> str:
        return (
            f"Packet({KIND_NAMES[self.kind]} flow={getattr(self.flow, 'flow_id', '?')} "
            f"seq={self.seq} size={self.size} hop={self.hop}/{len(self.route)})"
        )

"""Output-queued link models for the packet backend.

Each directed link owns one FIFO output queue with

* a byte capacity (``buffer_size``),
* ECN marking thresholds ``kmin`` / ``kmax`` (probabilistic RED-style ramp
  between them, certain marking above ``kmax``),
* drop-on-overflow for sender-based transports, or trim-to-header for
  NDP flows,
* store-and-forward serialisation at the link bandwidth followed by the
  link's propagation latency.

Two implementations share this model:

:class:`BurstLinkQueue` (the default, ``SimulationConfig.packet_batching``)
    Serialises *arithmetically*: because the queue is FIFO and
    work-conserving, the departure time of a packet is fully determined at
    enqueue time (``depart = max(free_at, now) + tx``), so the queue
    schedules exactly **one** event per packet — its delivery at the far
    end — and keeps occupancy as a lazily-drained ledger of
    ``(depart, size)`` records.  A whole congestion window enqueued in one
    burst therefore advances with one heap operation per packet instead of
    the legacy three (enqueue bookkeeping + transmission completion +
    propagation arrival), with identical departure timestamps, drop/trim
    decisions, and ECN draws.

:class:`LinkQueue` (legacy, ``packet_batching=False``)
    The original event-per-transmission implementation: it schedules its own
    transmission-completion events on the backend's shared
    :class:`~repro.network.events.EventQueue` and hands arriving packets
    back to the backend via the ``deliver`` callback.  Kept as the reference
    for the A/B determinism tests (``tests/test_perf_determinism.py``).
"""
from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Callable, Deque, Optional, Tuple

import numpy as np

from repro.network.backend import NetworkStats
from repro.network.events import EventQueue
from repro.network.packet.packet import Packet
from repro.network.topology.base import Link

DeliverCallback = Callable[[Packet, int], None]

_NEVER = (1 << 62)  # "no pending departure" sentinel for the drain fast path


class BurstLinkQueue:
    """Arithmetic FIFO serialiser of one directed link (one event per packet).

    Accepted packets are appended to the ``out`` stream with their computed
    departure times; the backend's merge loop
    (:meth:`~repro.network.packet.backend.PacketBackend._run_merged`)
    consumes the per-queue streams in canonical order and performs the
    deliveries — the queue itself never fires transmission-completion
    events.

    Occupancy semantics match the legacy queue under its dominant
    event-ordering: a packet occupies the buffer from its enqueue until
    *strictly after* its departure instant, i.e. an enqueue happening at
    exactly another packet's departure time still sees that packet queued
    (in the legacy engine the arrival event at such a tie was inserted
    before the transmission-completion event whenever propagation latency
    exceeds serialisation time, which holds for every shipped
    configuration).
    """

    __slots__ = (
        "link",
        "events",
        "stats",
        "capacity",
        "kmin",
        "kmax",
        "rng",
        "pending",
        "queued_bytes",
        "free_at",
        "latency",
        "drops",
        "trims",
        "ecn_marks",
        "max_queued_bytes",
        "busy_ns",
        "_tx_cache",
        "_bandwidth",
        "_link_id",
        "head_depart",
        "out",
        "live",
        "_streams",
    )

    def __init__(
        self,
        link: Link,
        events: EventQueue,
        stats: NetworkStats,
        capacity: int,
        kmin: int,
        kmax: int,
        rng: np.random.Generator,
    ) -> None:
        self.link = link
        self.events = events
        self.stats = stats
        self.capacity = capacity
        self.kmin = kmin
        self.kmax = kmax
        self.rng = rng
        # (departure time, size) of every accepted, not-yet-departed packet
        self.pending: Deque[Tuple[int, int]] = deque()
        self.queued_bytes = 0
        self.free_at = 0
        self.latency = link.latency
        self.drops = 0
        self.trims = 0
        self.ecn_marks = 0
        self.max_queued_bytes = 0
        self.busy_ns = 0
        self._tx_cache: dict = {}
        self._bandwidth = link.bandwidth
        self._link_id = link.link_id
        # departure time of the oldest pending packet (sys.maxsize when the
        # ledger is empty): one int compare short-circuits the drain loop
        self.head_depart = _NEVER
        # outgoing deliveries as packets in departure order (each packet's
        # ``depart`` slot holds its departure from this link) — a plain
        # FIFO, already time-sorted because departures are monotone.  The
        # backend's merge loop interleaves the per-queue streams in the
        # canonical (time, depart, link) order; ``live`` records whether the
        # stream's head is currently represented in the merge heap.
        self.out: Deque[Packet] = deque()
        self.live = False
        self._streams: list = []  # reassigned by the backend (shared heap)

    # ------------------------------------------------------------------ enqueue
    def tx_time(self, size: int) -> int:
        """Serialisation time of ``size`` bytes (integer ns, cached per size)."""
        tx = self._tx_cache.get(size)
        if tx is None:
            tx = max(1, int(round(size / self._bandwidth)))
            self._tx_cache[size] = tx
        return tx

    def occupancy(self, now: int) -> int:
        """Queued bytes at ``now``, draining departures strictly before it."""
        if self.head_depart < now:
            pending = self.pending
            qb = self.queued_bytes
            while pending and pending[0][0] < now:
                qb -= pending.popleft()[1]
            self.queued_bytes = qb
            self.head_depart = pending[0][0] if pending else _NEVER
        return self.queued_bytes

    def enqueue(self, packet: Packet, now: int) -> bool:
        """Offer ``packet`` to the queue at time ``now``.

        Returns ``True`` when the packet was accepted (possibly trimmed) and
        ``False`` when it was dropped.  Control packets (ACK/NACK/PULL) and
        already-trimmed headers are never dropped.
        """
        qb = self.queued_bytes
        if self.head_depart < now:
            pending = self.pending
            while pending and pending[0][0] < now:
                qb -= pending.popleft()[1]
            self.head_depart = pending[0][0] if pending else _NEVER
        size = packet.size
        if packet.kind == 0 and not packet.trimmed:  # DATA
            if qb + size > self.capacity:
                if packet.flow.trimmable:
                    # NDP: trim the payload, keep the header.
                    packet.trimmed = True
                    packet.size = size = packet.flow.header_size
                    self.trims += 1
                    self.stats.packets_trimmed += 1
                else:
                    self.drops += 1
                    self.stats.packets_dropped += 1
                    self.queued_bytes = qb
                    return False
            elif qb > self.kmin:
                # RED-style ECN on the instantaneous pre-enqueue depth
                if qb >= self.kmax:
                    mark = True
                else:
                    prob = (qb - self.kmin) / max(1, (self.kmax - self.kmin))
                    mark = self.rng.random() < prob
                if mark and not packet.ecn:
                    packet.ecn = True
                    self.ecn_marks += 1
                    self.stats.packets_ecn_marked += 1

        tx = self._tx_cache.get(size)
        if tx is None:
            tx = max(1, int(round(size / self._bandwidth)))
            self._tx_cache[size] = tx
        free = self.free_at
        depart = (free if free > now else now) + tx
        self.free_at = depart
        self.busy_ns += tx
        qb += size
        self.queued_bytes = qb
        if qb > self.max_queued_bytes:
            self.max_queued_bytes = qb
            if qb > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = qb
        if self.head_depart == _NEVER:
            self.head_depart = depart
        self.pending.append((depart, size))
        packet.depart = depart
        self.out.append(packet)
        if not self.live:
            self.live = True
            heappush(self._streams, (depart + self.latency, depart, self._link_id))
        return True

    # ---------------------------------------------------------------- queries
    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this link spent transmitting."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)


class LinkQueue:
    """FIFO output queue + transmitter of one directed link (legacy engine)."""

    __slots__ = (
        "link",
        "events",
        "stats",
        "deliver",
        "capacity",
        "kmin",
        "kmax",
        "rng",
        "queue",
        "queued_bytes",
        "busy",
        "drops",
        "trims",
        "ecn_marks",
        "max_queued_bytes",
        "busy_ns",
    )

    def __init__(
        self,
        link: Link,
        events: EventQueue,
        stats: NetworkStats,
        deliver: DeliverCallback,
        capacity: int,
        kmin: int,
        kmax: int,
        rng: np.random.Generator,
    ) -> None:
        self.link = link
        self.events = events
        self.stats = stats
        self.deliver = deliver
        self.capacity = capacity
        self.kmin = kmin
        self.kmax = kmax
        self.rng = rng
        self.queue: Deque[Packet] = deque()
        self.queued_bytes = 0
        self.busy = False
        self.drops = 0
        self.trims = 0
        self.ecn_marks = 0
        self.max_queued_bytes = 0
        self.busy_ns = 0

    # ------------------------------------------------------------------ enqueue
    def enqueue(self, packet: Packet, now: int) -> bool:
        """Offer ``packet`` to the queue at time ``now``.

        Returns ``True`` when the packet was accepted (possibly trimmed) and
        ``False`` when it was dropped.  Control packets (ACK/NACK/PULL) and
        already-trimmed headers are never dropped — they are tiny and
        modelling their loss only adds retransmission corner cases without
        changing any of the studied behaviours.
        """
        if packet.is_data and not packet.trimmed:
            if self.queued_bytes + packet.size > self.capacity:
                if packet.flow.trimmable:
                    # NDP: trim the payload, keep the header.
                    packet.trimmed = True
                    packet.size = packet.flow.header_size
                    self.trims += 1
                    self.stats.packets_trimmed += 1
                else:
                    self.drops += 1
                    self.stats.packets_dropped += 1
                    return False
            else:
                self._maybe_mark_ecn(packet)

        self.queue.append(packet)
        self.queued_bytes += packet.size
        if self.queued_bytes > self.max_queued_bytes:
            self.max_queued_bytes = self.queued_bytes
            if self.queued_bytes > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = self.queued_bytes
        if not self.busy:
            self._start_transmission(now)
        return True

    def _maybe_mark_ecn(self, packet: Packet) -> None:
        """RED-style ECN marking based on the instantaneous queue depth."""
        q = self.queued_bytes
        if q <= self.kmin:
            return
        if q >= self.kmax:
            mark = True
        else:
            prob = (q - self.kmin) / max(1, (self.kmax - self.kmin))
            mark = self.rng.random() < prob
        if mark and not packet.ecn:
            packet.ecn = True
            self.ecn_marks += 1
            self.stats.packets_ecn_marked += 1

    # ------------------------------------------------------------- transmission
    def _start_transmission(self, now: int) -> None:
        packet = self.queue[0]
        self.busy = True
        tx_ns = max(1, int(round(packet.size / self.link.bandwidth)))
        self.busy_ns += tx_ns
        self.events.schedule_finish(now + tx_ns, self.link.link_id, self._finish_transmission, packet)

    def _finish_transmission(self, now: int, packet: Packet) -> None:
        popped = self.queue.popleft()
        assert popped is packet, "link queue transmitted out of order"
        self.queued_bytes -= packet.size
        # propagation to the other end of the link (delivery keyed by the
        # canonical (departure, link) pair — see EventQueue.schedule_delivery)
        self.events.schedule_delivery(
            now + self.link.latency, now, self.link.link_id, self._arrive, packet
        )
        if self.queue:
            self._start_transmission(now)
        else:
            self.busy = False

    def _arrive(self, now: int, packet: Packet) -> None:
        self.deliver(packet, now)

    # ---------------------------------------------------------------- queries
    def occupancy(self, now: int) -> int:
        """Queued bytes at ``now`` (uniform query API with the burst queue)."""
        return self.queued_bytes

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this link spent transmitting."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)

"""Output-queued link model for the packet backend.

Each directed link owns one FIFO output queue with

* a byte capacity (``buffer_size``),
* ECN marking thresholds ``kmin`` / ``kmax`` (probabilistic RED-style ramp
  between them, certain marking above ``kmax``),
* drop-on-overflow for sender-based transports, or trim-to-header for
  NDP flows,
* store-and-forward serialisation at the link bandwidth followed by the
  link's propagation latency.

The queue schedules its own transmission-completion events on the backend's
shared :class:`~repro.network.events.EventQueue` and hands arriving packets
back to the backend via the ``deliver`` callback.
"""
from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

import numpy as np

from repro.network.backend import NetworkStats
from repro.network.events import EventQueue
from repro.network.packet.packet import Packet
from repro.network.topology.base import Link

DeliverCallback = Callable[[Packet, int], None]


class LinkQueue:
    """FIFO output queue + transmitter of one directed link."""

    __slots__ = (
        "link",
        "events",
        "stats",
        "deliver",
        "capacity",
        "kmin",
        "kmax",
        "rng",
        "queue",
        "queued_bytes",
        "busy",
        "drops",
        "trims",
        "ecn_marks",
        "max_queued_bytes",
        "busy_ns",
    )

    def __init__(
        self,
        link: Link,
        events: EventQueue,
        stats: NetworkStats,
        deliver: DeliverCallback,
        capacity: int,
        kmin: int,
        kmax: int,
        rng: np.random.Generator,
    ) -> None:
        self.link = link
        self.events = events
        self.stats = stats
        self.deliver = deliver
        self.capacity = capacity
        self.kmin = kmin
        self.kmax = kmax
        self.rng = rng
        self.queue: Deque[Packet] = deque()
        self.queued_bytes = 0
        self.busy = False
        self.drops = 0
        self.trims = 0
        self.ecn_marks = 0
        self.max_queued_bytes = 0
        self.busy_ns = 0

    # ------------------------------------------------------------------ enqueue
    def enqueue(self, packet: Packet, now: int) -> bool:
        """Offer ``packet`` to the queue at time ``now``.

        Returns ``True`` when the packet was accepted (possibly trimmed) and
        ``False`` when it was dropped.  Control packets (ACK/NACK/PULL) and
        already-trimmed headers are never dropped — they are tiny and
        modelling their loss only adds retransmission corner cases without
        changing any of the studied behaviours.
        """
        if packet.is_data and not packet.trimmed:
            if self.queued_bytes + packet.size > self.capacity:
                if packet.flow.trimmable:
                    # NDP: trim the payload, keep the header.
                    packet.trimmed = True
                    packet.size = packet.flow.header_size
                    self.trims += 1
                    self.stats.packets_trimmed += 1
                else:
                    self.drops += 1
                    self.stats.packets_dropped += 1
                    return False
            else:
                self._maybe_mark_ecn(packet)

        self.queue.append(packet)
        self.queued_bytes += packet.size
        if self.queued_bytes > self.max_queued_bytes:
            self.max_queued_bytes = self.queued_bytes
            if self.queued_bytes > self.stats.max_queue_bytes:
                self.stats.max_queue_bytes = self.queued_bytes
        if not self.busy:
            self._start_transmission(now)
        return True

    def _maybe_mark_ecn(self, packet: Packet) -> None:
        """RED-style ECN marking based on the instantaneous queue depth."""
        q = self.queued_bytes
        if q <= self.kmin:
            return
        if q >= self.kmax:
            mark = True
        else:
            prob = (q - self.kmin) / max(1, (self.kmax - self.kmin))
            mark = self.rng.random() < prob
        if mark and not packet.ecn:
            packet.ecn = True
            self.ecn_marks += 1
            self.stats.packets_ecn_marked += 1

    # ------------------------------------------------------------- transmission
    def _start_transmission(self, now: int) -> None:
        packet = self.queue[0]
        self.busy = True
        tx_ns = max(1, int(round(packet.size / self.link.bandwidth)))
        self.busy_ns += tx_ns
        self.events.schedule(now + tx_ns, self._finish_transmission, packet)

    def _finish_transmission(self, now: int, packet: Packet) -> None:
        popped = self.queue.popleft()
        assert popped is packet, "link queue transmitted out of order"
        self.queued_bytes -= packet.size
        # propagation to the other end of the link
        self.events.schedule(now + self.link.latency, self._arrive, packet)
        if self.queue:
            self._start_transmission(now)
        else:
            self.busy = False

    def _arrive(self, now: int, packet: Packet) -> None:
        self.deliver(packet, now)

    # ---------------------------------------------------------------- queries
    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` this link spent transmitting."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / elapsed_ns)

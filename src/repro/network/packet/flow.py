"""Per-message transport state for the packet backend.

Every GOAL ``send`` becomes one :class:`Flow`: the message is segmented into
MTU-sized packets, transmitted under the flow's congestion-control instance,
and reassembled at the receiver.  The flow tracks both sender-side state
(what has been injected, what is in flight, what needs retransmission) and
receiver-side state (which sequence numbers have arrived).
"""
from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple

from repro.network.congestion.base import CongestionControl


class Flow:
    """State of one message in the packet-level simulation."""

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "size",
        "tag",
        "op_id",
        "stream",
        "post_time",
        "mtu",
        "num_packets",
        "last_packet_size",
        "cc",
        "route",
        "ack_route",
        "route_q0",
        "ack_q0",
        "next_new_seq",
        "inflight_bytes",
        "acked",
        "sent_times",
        "retransmit_queue",
        "retransmit_pending",
        "received",
        "received_bytes",
        "send_op_completed",
        "message_delivered",
        "trimmable",
        "header_size",
        "pulls_outstanding",
        "job",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size: int,
        tag: int,
        op_id: int,
        stream: int,
        post_time: int,
        mtu: int,
        cc: CongestionControl,
        route: Tuple[int, ...],
        ack_route: Tuple[int, ...],
    ) -> None:
        if size <= 0:
            raise ValueError("flow size must be positive")
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.size = size
        self.tag = tag
        self.op_id = op_id
        self.stream = stream
        self.post_time = post_time
        self.mtu = mtu
        self.num_packets = (size + mtu - 1) // mtu
        self.last_packet_size = size - (self.num_packets - 1) * mtu
        self.cc = cc
        self.route = route
        self.ack_route = ack_route
        # first-hop queue objects, cached by the backend at flow creation so
        # the per-packet injection path skips two list lookups
        self.route_q0 = None
        self.ack_q0 = None

        # sender-side state
        self.next_new_seq = 0
        self.inflight_bytes = 0
        self.acked: Set[int] = set()
        self.sent_times: Dict[int, int] = {}
        self.retransmit_queue: Deque[int] = deque()
        self.retransmit_pending: Set[int] = set()
        self.send_op_completed = False

        # receiver-side state
        self.received: Set[int] = set()
        self.received_bytes = 0
        self.message_delivered = False

        # NDP specifics
        self.trimmable = cc.receiver_driven
        self.header_size = getattr(cc, "header_size", 64)
        self.pulls_outstanding = 0

        # multi-job attribution: tag window this flow belongs to (set by the
        # backend when job_tag_stride is configured; 0 otherwise)
        self.job = 0

    # -------------------------------------------------------------- sender side
    def packet_size(self, seq: int) -> int:
        """On-wire payload size of packet ``seq``."""
        if seq == self.num_packets - 1:
            return self.last_packet_size
        return self.mtu

    def has_unsent_data(self) -> bool:
        """True while new (never transmitted) packets remain."""
        return self.next_new_seq < self.num_packets

    def has_retransmissions(self) -> bool:
        return bool(self.retransmit_queue)

    def next_seq_to_send(self) -> Optional[int]:
        """Pick the next sequence number to transmit (retransmissions first)."""
        while self.retransmit_queue:
            seq = self.retransmit_queue.popleft()
            self.retransmit_pending.discard(seq)
            if seq not in self.acked:
                return seq
        if self.next_new_seq < self.num_packets:
            seq = self.next_new_seq
            self.next_new_seq += 1
            return seq
        return None

    def mark_for_retransmission(self, seq: int) -> bool:
        """Queue ``seq`` for retransmission unless already acked or queued."""
        if seq in self.acked or seq in self.retransmit_pending:
            return False
        self.retransmit_pending.add(seq)
        self.retransmit_queue.append(seq)
        return True

    def on_ack(self, seq: int) -> int:
        """Process an acknowledgement for ``seq``; returns the freed bytes."""
        if seq in self.acked:
            return 0
        self.acked.add(seq)
        freed = self.packet_size(seq)
        self.inflight_bytes = max(0, self.inflight_bytes - freed)
        return freed

    def all_acked(self) -> bool:
        return len(self.acked) == self.num_packets

    def all_injected(self) -> bool:
        """True once every packet has been transmitted at least once."""
        return self.next_new_seq >= self.num_packets

    # ------------------------------------------------------------ receiver side
    def on_data_received(self, seq: int, size: int) -> bool:
        """Record the arrival of data packet ``seq``; return True if it was new."""
        if seq in self.received:
            return False
        self.received.add(seq)
        self.received_bytes += size
        return True

    def fully_received(self) -> bool:
        return len(self.received) == self.num_packets

    def __repr__(self) -> str:
        return (
            f"Flow({self.flow_id}: {self.src}->{self.dst} {self.size}B "
            f"{len(self.acked)}/{self.num_packets} acked)"
        )

"""Packet-level network backend (the htsim substrate).

Simulates every message as a sequence of MTU-sized packets traversing
per-link output queues with finite buffers, ECN marking, drops (or NDP-style
trimming), and pluggable congestion control.  Slower than the message-level
backend but able to report the fine-grained statistics the paper's case
studies rely on: packet drops, trims, ECN marks and queue occupancy.
"""
from repro.network.packet.backend import PacketBackend

__all__ = ["PacketBackend"]

"""Conservative-window parallel packet engine (``SimulationConfig.shards``).

Partitioned discrete-event simulation of the packet backend: the topology's
devices are split into ``shards`` contiguous host blocks (switches follow
their first attached host), each shard runs an independent
:class:`~repro.network.packet.backend.PacketBackend` over the *full*
topology but only its own ranks' GOAL DAGs, and the driver advances all
shards in lockstep lookahead windows:

1. every shard reports the timestamp of its next pending event,
2. the driver computes ``T = min(next events, pending boundary messages)``
   and the window edge ``U = T + L`` where the lookahead ``L`` is the
   minimum propagation latency over *cut links* (links whose endpoints live
   on different shards),
3. every shard executes its events up to and including ``U``,
4. packets that crossed a cut link are exchanged at the barrier and applied
   before the next window.

This is the classic conservative (Chandy–Misra style) window protocol: a
packet leaving shard A at time ``t >= T`` arrives on shard B no earlier
than ``t + 1 + L > U`` (serialisation takes at least 1 ns), so nothing
exchanged at the barrier can ever land in a shard's executed past.

Determinism contract
--------------------
``shards=1`` (the default) never enters this module — the single-process
engine runs byte-identically to previous releases.  ``shards>1`` replaces
the backend's single event-order-consumed RNG stream with *keyed* streams
whose draws depend only on simulated identities, never on engine
interleaving:

* route choice (ECMP/Valiant ties) draws from a per-flow generator seeded
  by ``(seed, 0x5A, src, dst, pair_occurrence)``,
* ECN marking draws from a per-link generator seeded by
  ``(seed, 0xEC, link_id)``,
* post-fault route re-picks draw from a per-flow generator seeded by
  ``(seed, 0x9E, src, dst, pair_occurrence, nth_repick)``,
* in-flight reroute tie-breaks draw from a per-packet generator seeded by
  ``(seed, 0xF7, src, dst, pair_occurrence, seq, hop, now)``.

Results are therefore bit-identical across *any* shard count >= 2, and
coincide with ``shards=1`` exactly on configurations that consume no
randomness (single-candidate routes, traffic outside the probabilistic ECN
band) — which is what ``tests/test_sharded_parity.py`` locks in.  Merged
``message_records`` are sorted by ``(completion_time, src, dst, tag)``;
the relative order of same-instant records is unspecified.

Faults, adaptive routing, and convergent control planes (v2)
------------------------------------------------------------
The v1 restrictions are lifted; the three features shard as follows.

**Fault epochs** are known a priori (``FaultSchedule`` is static data), so
the *driver* owns the fault clock: timed events are grouped into epochs,
window edges never cross an unconsumed epoch, and when the global window
floor reaches an epoch's time the driver applies it at the barrier on
*every* shard — after all events before the epoch ran anywhere, before any
same-time traffic event runs, which is exactly the serial engine's
fault-first tie-break.  Alive-table eviction, reroutes, and
``packets_lost_to_faults`` accounting replay bit-identically.

**Convergent control planes** (``ls``/``dv``) replicate: every shard holds
the full switch graph, so the advertisement wave originated by an epoch
computes identical per-switch learn instants and
:class:`~repro.network.control_plane.ConvergenceRecord` lists on every
shard; learn events replay inside each shard's windows at the same
``(time, insertion)`` positions as serial, making ``time_to_recover_ns``
and ``packets_blackholed`` exact.

**Load-adaptive routing** reads global link-load *snapshots* exchanged at
barriers on a fixed cadence (``SimulationConfig.load_snapshot_ns``; 0 =
the topology's min link latency — layout-independent either way).  The
snapshot at ``S`` governs every route draw in ``(S, S + cadence]``, so the
semantics are shard-count-invariant — but they deliberately *approximate*
serial's live queue depths; ``tests/test_sharded_parity.py`` locks
invariance across shard counts with an A/B test instead of serial parity.

Serial equality under faults additionally assumes the run has no
congestion drops concurrent with a fault transition: the sharded engine
decides "does this flow still need its route re-picked" by sender-side
retirement (all packets ACKed) while serial uses receiver-side delivery,
and the two differ only for a delivered-but-unACKed flow holding a
pending spurious retransmission.  Shard-count invariance is unconditional.

``min_retransmit_timeout`` must exceed the lookahead so cross-shard loss
notifications always fire in a later window (a ``ValueError`` names both
computed values).
"""
from __future__ import annotations

import time as _time
import warnings
from dataclasses import dataclass
from heapq import heappush
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.goal.schedule import GoalSchedule
from repro.network.backend import JobStats, NetworkStats, SimulationResult
from repro.network.config import SimulationConfig
from repro.network.congestion import create_congestion_control
from repro.network.packet.backend import PacketBackend
from repro.network.packet.flow import Flow
from repro.network.packet.linkqueue import BurstLinkQueue, LinkQueue
from repro.network.packet.packet import Packet
from repro.network.topology import build_topology
from repro.network.topology.base import Topology
from repro.scheduler.scheduler import GoalScheduler

# SeedSequence stream tags separating the keyed RNG families
_FLOW_STREAM = 0x5A
_ECN_STREAM = 0xEC
_REPICK_STREAM = 0x9E
_REROUTE_STREAM = 0xF7

# lookahead sentinel when no link crosses a shard boundary: one window
# covers the whole simulation
_NO_CUT = 1 << 60

# boundary message kinds
_MSG_PACKET = 0
_MSG_LOSS = 1

# flow key: (src, dst, pair_occurrence) — globally unique and invariant
# under the shard count (occurrence numbers follow the canonical event
# order of the src rank's shard, which every shard count reproduces)
_FlowKey = Tuple[int, int, int]


# ---------------------------------------------------------------------- plan
@dataclass(frozen=True)
class ShardPlan:
    """Static device partition shared by the driver and every shard."""

    num_shards: int
    #: device id -> owning shard
    device_owner: Tuple[int, ...]
    #: rank -> owning shard (prefix of ``device_owner``: ranks are hosts)
    rank_owner: Tuple[int, ...]
    #: ranks each shard schedules
    shard_ranks: Tuple[Tuple[int, ...], ...]
    #: min propagation latency over cut links (ns); ``_NO_CUT`` when none
    lookahead: int
    num_cut_links: int


def plan_shards(topology: Topology, num_ranks: int, shards: int) -> ShardPlan:
    """Partition ``topology`` into ``shards`` contiguous host blocks.

    Hosts split evenly in id order (``h * shards // num_hosts``); a switch
    joins the shard of its first attached host so every host uplink stays
    shard-local whenever the block boundary does not cut through a ToR;
    switches with no attached host (e.g. fat-tree cores) round-robin across
    shards to spread relay work.
    """
    hosts = topology.num_hosts
    if not 1 <= shards <= hosts:
        raise ValueError(f"shards must be in [1, num_hosts={hosts}], got {shards}")
    owner = [0] * topology.num_devices
    for h in range(hosts):
        owner[h] = h * shards // hosts
    attach_owner: Dict[int, int] = {}
    for h in range(hosts):
        attach_owner.setdefault(topology.attachment(h), owner[h])
    hostless = 0
    for dev in range(hosts, topology.num_devices):
        assigned = attach_owner.get(dev)
        if assigned is None:
            assigned = hostless % shards
            hostless += 1
        owner[dev] = assigned
    cut = [l.latency for l in topology.links if owner[l.src] != owner[l.dst]]
    shard_ranks: List[List[int]] = [[] for _ in range(shards)]
    for r in range(num_ranks):
        shard_ranks[owner[r]].append(r)
    return ShardPlan(
        num_shards=shards,
        device_owner=tuple(owner),
        rank_owner=tuple(owner[:num_ranks]),
        shard_ranks=tuple(tuple(rs) for rs in shard_ranks),
        lookahead=min(cut) if cut else _NO_CUT,
        num_cut_links=len(cut),
    )


def _validate_sharded(config: SimulationConfig, plan: ShardPlan) -> None:
    """Reject configurations whose sharded timing contract cannot hold."""
    if plan.num_cut_links and config.min_retransmit_timeout <= plan.lookahead:
        raise ValueError(
            f"min_retransmit_timeout ({config.min_retransmit_timeout} ns) "
            f"must exceed the shard lookahead ({plan.lookahead} ns) so "
            "cross-shard loss notifications always fire in a later window"
        )


# ------------------------------------------------------------ boundary queues
class _BoundaryBurstQueue(BurstLinkQueue):
    """Burst queue of a cut link at its owning (transmitting) shard.

    ``live`` is pinned True so the base enqueue never registers the stream
    in the local merge heap; every accepted packet is immediately diverted
    from ``out`` to the shard's outbox (deliveries happen on the receiving
    shard).  Drop/trim/ECN decisions still run here, at the link's owner,
    exactly as in the serial engine.
    """

    __slots__ = ("outbox",)

    def __init__(self, *args: Any, outbox: List[Tuple[int, Packet]], **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.outbox = outbox
        self.live = True

    def enqueue(self, packet: Packet, now: int) -> bool:
        if not BurstLinkQueue.enqueue(self, packet, now):
            return False
        self.outbox.append((self._link_id, self.out.pop()))
        return True


class _BoundaryLinkQueue(LinkQueue):
    """Legacy-engine variant: transmission completes into the outbox."""

    __slots__ = ("outbox",)

    def __init__(self, *args: Any, outbox: List[Tuple[int, Packet]], **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self.outbox = outbox

    def _finish_transmission(self, now: int, packet: Packet) -> None:
        popped = self.queue.popleft()
        assert popped is packet, "link queue transmitted out of order"
        self.queued_bytes -= packet.size
        packet.depart = now
        self.outbox.append((self.link.link_id, packet))
        if self.queue:
            self._start_transmission(now)
        else:
            self.busy = False


# ----------------------------------------------------------------- the shard
class ShardPacketBackend(PacketBackend):
    """Packet backend of one shard: keyed RNGs, boundary diversion, replicas.

    A flow whose packets cross shards is *replicated* lazily: the first
    boundary packet of a flow sent toward a shard carries the flow's spec
    (route, sizes, base RTT, ...), and the receiving shard materialises a
    replica ``Flow`` holding the receiver-side state.  Sender-side state
    (window, retransmissions, pull credits) only ever lives at the origin;
    ACK/NACK/PULL packets crossing back resolve to the original flow by
    key.  Drops are routed to the flow's origin shard as loss messages so
    loss timeouts run where the sender state lives, applied in a canonical
    ``(fire_time, key, seq)`` order that no shard count perturbs.
    """

    def __init__(self, plan: ShardPlan, shard_id: int) -> None:
        super().__init__()
        self.plan = plan
        self.shard_id = shard_id

    # ------------------------------------------------------------------ setup
    def setup(self, num_ranks: int, config: SimulationConfig) -> None:
        _validate_sharded(config, self.plan)
        super().setup(num_ranks, config)
        plan = self.plan
        seed = int(config.seed)
        # keyed ECN draws: per-link streams make marking decisions a
        # function of (seed, link, arrival order at that link) only
        for q in self.queues:
            q.rng = np.random.default_rng((seed, _ECN_STREAM, q.link.link_id))
        # boundary diversion: replace the local queue of every outgoing cut
        # link (queues are untouched pre-traffic, so swapping objects is
        # exact); the queue object of an *incoming* cut link doubles as the
        # mailbox its deliveries are replayed from
        self._out_packets: List[Tuple[int, Packet]] = []
        self._boundary_dest: Dict[int, int] = {}
        owner = plan.device_owner
        me = self.shard_id
        for link in self.topology.links:
            if owner[link.src] == me and owner[link.dst] != me:
                self._boundary_dest[link.link_id] = owner[link.dst]
                old = self.queues[link.link_id]
                if self._batching:
                    nq: Any = _BoundaryBurstQueue(
                        link,
                        self.events,
                        self.stats,
                        capacity=old.capacity,
                        kmin=old.kmin,
                        kmax=old.kmax,
                        rng=old.rng,
                        outbox=self._out_packets,
                    )
                    nq._streams = self._stream_heads
                else:
                    nq = _BoundaryLinkQueue(
                        link,
                        self.events,
                        self.stats,
                        self._on_link_delivery,
                        capacity=old.capacity,
                        kmin=old.kmin,
                        kmax=old.kmax,
                        rng=old.rng,
                        outbox=self._out_packets,
                    )
                self.queues[link.link_id] = nq
        # flow identity and replica registry (Flow is slotted, so keys are
        # tracked in side tables rather than on the object)
        self._key_by_flow: Dict[int, _FlowKey] = {}
        self._flow_by_key: Dict[_FlowKey, Flow] = {}
        self._pair_seq: Dict[Tuple[int, int], int] = {}
        self._spec_sent: set = set()
        self._n_replicas = 0
        # (dest shard, key, seq, fire_time) loss notifications of the window
        self._loss_out: List[Tuple[int, _FlowKey, int, int]] = []
        # without cut links no packet is ever foreign, so drops keep the
        # serial immediate-schedule path (the window covers all of time and
        # a deferred drop could land in the past)
        self._defer_drops = plan.num_cut_links > 0
        self._seed = seed
        # flows whose route was re-picked after a fault/learn event: their
        # replicas hold the originally shipped route, so boundary packets of
        # these flows always carry an explicit route tuple (identity against
        # ``flow.route`` no longer proves the peer would decode the same)
        self._repicked: set = set()
        self._repick_seq: Dict[_FlowKey, int] = {}
        # once any fault epoch has applied, a replica's ``flow.route`` may
        # silently disagree with the owner's (owners re-pick, replicas keep
        # the originally shipped route), so replica-encoded boundary packets
        # must stop using the rf=0 "decode via flow.route" compression: a
        # packet that bounces replica->owner after the owner re-picked would
        # otherwise swap onto the new route mid-flight
        self._epochs_applied = False
        # load-adaptive routing reads the merged global snapshot the driver
        # broadcast at the last cadence boundary; this shard reports its
        # owned links' occupancies back at each boundary
        if self._needs_load:
            self._snap_view = np.zeros(len(self.topology.links), dtype=np.int64)
            self._owned_links = [
                link.link_id
                for link in self.topology.links
                if owner[link.src] == me
            ]

    # ------------------------------------------------------------- keyed flows
    def _start_flow(self, time: int, payload: Any) -> None:
        rank, dst = payload[0], payload[1]
        pair = (rank, dst)
        occurrence = self._pair_seq.get(pair, 0)
        self._pair_seq[pair] = occurrence + 1
        # route ties draw from the flow-keyed stream: identical for every
        # shard count, independent of global event interleaving
        routing = self.routing
        saved = routing.rng
        routing.rng = np.random.default_rng(
            (int(self.config.seed), _FLOW_STREAM, rank, dst, occurrence)
        )
        try:
            super()._start_flow(time, payload)
        finally:
            routing.rng = saved
        flow = self.flows[-1]
        key = (rank, dst, occurrence)
        self._key_by_flow[id(flow)] = key
        self._flow_by_key[key] = flow

    def _flow_spec(self, flow: Flow) -> Tuple:
        """Picklable flow description a peer shard can build a replica from."""
        return (
            flow.size,
            flow.tag,
            flow.op_id,
            flow.stream,
            flow.post_time,
            flow.mtu,
            flow.route,
            flow.ack_route,
            flow.job,
            # shipped, not recomputed: replica shards must not touch their
            # route/RTT caches for foreign pairs (counter parity)
            flow.cc.base_rtt_ns,
        )

    def _resolve_flow(self, key: _FlowKey, spec: Optional[Tuple]) -> Flow:
        flow = self._flow_by_key.get(key)
        if flow is not None:
            return flow
        if spec is None:
            raise RuntimeError(
                f"boundary packet for unknown flow {key} arrived without its spec"
            )
        size, tag, op_id, stream, post_time, mtu, route, ack_route, job, rtt = spec
        cfg = self.config
        cc = create_congestion_control(
            cfg.cc_algorithm,
            mtu=mtu,
            initial_window_packets=cfg.initial_window_packets,
            base_rtt_ns=rtt,
        )
        self._n_replicas += 1
        flow = Flow(
            flow_id=-self._n_replicas,  # negative: never collides with local ids
            src=key[0],
            dst=key[1],
            size=size,
            tag=tag,
            op_id=op_id,
            stream=stream,
            post_time=post_time,
            mtu=mtu,
            cc=cc,
            route=route,
            ack_route=ack_route,
        )
        flow.route_q0 = self.queues[route[0]]
        flow.ack_q0 = self.queues[ack_route[0]]
        flow.job = job
        self._key_by_flow[id(flow)] = key
        self._flow_by_key[key] = flow
        return flow

    # -------------------------------------------------------------------- loss
    def _handle_data_drop(self, packet: Packet, now: int) -> None:
        if not self._defer_drops:
            super()._handle_data_drop(packet, now)
            return
        # all loss timeouts (local and foreign) funnel through the barrier
        # so their insertion order is canonical under every shard count;
        # min_retransmit_timeout > lookahead guarantees the fire time lies
        # beyond the current window edge
        flow = packet.flow
        key = self._key_by_flow[id(flow)]
        self._loss_out.append(
            (
                self.plan.rank_owner[flow.src],
                key,
                packet.seq,
                now + self.config.min_retransmit_timeout,
            )
        )

    # ----------------------------------------------------------------- faults
    def _schedule_fault_events(self) -> None:
        # the driver owns the fault clock: epochs arrive through
        # advance_window at barriers, never through the local event queue
        pass

    def _fault_flow_live(self, flow: Flow) -> bool:
        # replicas never re-pick (the origin ships explicit routes after its
        # own re-pick); origin flows use sender-side retirement — delivery
        # happens on the destination's shard, so ``message_delivered`` is
        # not observable here.  ACKed ⊆ delivered, so this re-picks a
        # superset of serial's flows; the difference is inert unless a
        # delivered-but-unACKed flow holds a pending spurious retransmission
        # (see the module docstring's serial-equality caveat).
        if flow.flow_id < 0:
            return False
        return not flow.all_acked()

    def _fault_repick(self, flow: Flow) -> None:
        key = self._key_by_flow[id(flow)]
        nth = self._repick_seq.get(key, 0)
        self._repick_seq[key] = nth + 1
        routing = self.routing
        saved = routing.rng
        routing.rng = np.random.default_rng(
            (self._seed, _REPICK_STREAM, key[0], key[1], key[2], nth)
        )
        try:
            super()._fault_repick(flow)
        finally:
            routing.rng = saved
        self._repicked.add(id(flow))

    def _reroute_pick(self, pkt: Packet, hop: int, now: int, n: int) -> int:
        # keyed by the packet's simulated identity: whichever shard holds
        # the packet when the reroute happens draws the same index
        key = self._key_by_flow[id(pkt.flow)]
        rng = np.random.default_rng(
            (self._seed, _REROUTE_STREAM, key[0], key[1], key[2], pkt.seq, hop, now)
        )
        return int(rng.integers(n))

    # ----------------------------------------------------------- load snapshots
    def _link_load(self, link_id: int) -> int:
        return int(self._snap_view[link_id])

    def _link_load_view(self) -> "np.ndarray":
        return self._snap_view

    def _collect_load_snapshot(self, at: int) -> "np.ndarray":
        """Occupancy of every link this shard owns, as of time ``at``."""
        view = np.zeros(len(self.queues), dtype=np.int64)
        queues = self.queues
        for link_id in self._owned_links:
            view[link_id] = queues[link_id].occupancy(at)
        return view

    # ---------------------------------------------------------------- windows
    def next_event_time(self) -> Optional[int]:
        """Timestamp of this shard's earliest pending event (None when idle)."""
        t = self.events.peek_time()
        if self._batching and self._stream_heads:
            st = self._stream_heads[0][0]
            if t is None or st < t:
                return st
        return t

    def advance_window(
        self,
        until: int,
        inbox: Sequence[Tuple],
        epochs: Sequence[Tuple[int, Sequence[Tuple[str, List[int]]]]] = (),
        snap_at: Optional[int] = None,
        load_view: Optional["np.ndarray"] = None,
    ) -> Optional["np.ndarray"]:
        """Apply barrier inputs, run all events up to ``until``, snapshot.

        Barrier input order matters: the inbox is applied *before* fault
        epochs so boundary packets flagged "use the flow's route" decode
        against the pre-epoch route — the same route their sender encoded
        against (both shards sat strictly before the epoch when the packet
        crossed).  Each epoch then replays through the serial engine's
        ``_apply_fault`` before any same-time traffic event runs.  When the
        driver asks (``snap_at``), returns this shard's owned-link load
        snapshot taken after the window drained.
        """
        if load_view is not None:
            self._snap_view = load_view
        if inbox:
            self._apply_inbox(inbox)
        if epochs:
            self._epochs_applied = True
        for time, transitions in epochs:
            for kind, ids in transitions:
                self._apply_fault(time, (kind, ids))
        if self._batching:
            self._run_merged(until)
        else:
            self.events.run(until=until)
        if snap_at is None:
            return None
        return self._collect_load_snapshot(snap_at)

    def _apply_inbox(self, inbox: Sequence[Tuple]) -> None:
        packets: List[Tuple] = []
        losses: List[Tuple] = []
        for _deliver, kind, payload in inbox:
            (packets if kind == _MSG_PACKET else losses).append(payload)
        # canonical application orders — both shard-count-invariant
        losses.sort(key=lambda p: (p[2], p[0], p[1]))  # (fire, key, seq)
        for key, seq, fire in losses:
            self.events.schedule(fire, self._on_loss_timeout, (self._flow_by_key[key], seq))
        packets.sort(key=lambda p: (p[1], p[0]))  # (depart, link)
        batching = self._batching
        streams = self._stream_heads
        for payload in packets:
            link_id, depart, pkind, seq, size, rf, hop, sent, ecn, trimmed, key, spec = payload
            flow = self._resolve_flow(key, spec)
            route = flow.route if rf == 0 else (flow.ack_route if rf == 1 else rf)
            pkt = self._alloc_packet(flow, pkind, seq, size, route, sent)
            pkt.hop = hop
            pkt.ecn = ecn
            pkt.trimmed = trimmed
            pkt.depart = depart
            latency = self.topology.links[link_id].latency
            if batching:
                # the cut link's local queue object is the mailbox: per-link
                # departures are monotone, so appends keep ``out`` sorted
                q = self.queues[link_id]
                q.out.append(pkt)
                if not q.live:
                    q.live = True
                    heappush(streams, (depart + latency, depart, link_id))
            else:
                self.events.schedule_delivery(
                    depart + latency, depart, link_id, self._boundary_arrive, pkt
                )

    def _boundary_arrive(self, now: int, packet: Packet) -> None:
        self._on_link_delivery(packet, now)

    def drain_outbox(self) -> List[Tuple[int, Tuple]]:
        """Encode and clear the window's boundary traffic as (dest, message).

        A message is ``(deliver_time, kind, payload)``; the driver only
        reads ``deliver_time`` (for the next window's floor) and routes the
        payload to ``dest``'s inbox.
        """
        msgs: List[Tuple[int, Tuple]] = []
        links = self.topology.links
        spec_sent = self._spec_sent
        key_of = self._key_by_flow
        repicked = self._repicked
        for link_id, pkt in self._out_packets:
            dest = self._boundary_dest[link_id]
            flow = pkt.flow
            key = key_of[id(flow)]
            spec = None
            sk = (key, dest)
            if sk not in spec_sent:
                spec_sent.add(sk)
                spec = self._flow_spec(flow)
            # common routes ship as flags, not tuples (pickle weight); a
            # re-picked flow's replicas still hold the originally shipped
            # route, so its packets always carry the tuple explicitly.
            # After the first fault epoch, replica-encoded packets also ship
            # explicit tuples: a replica cannot tell whether the owner
            # re-picked, and rf=0 decoded against a re-picked owner route
            # would swap an in-flight packet onto the new route
            route = pkt.route
            if route is flow.ack_route:
                rf: Any = 1
            elif (
                route is flow.route
                and id(flow) not in repicked
                and (flow.flow_id >= 0 or not self._epochs_applied)
            ):
                rf = 0
            else:
                rf = route
            deliver = pkt.depart + links[link_id].latency
            msgs.append(
                (
                    dest,
                    (
                        deliver,
                        _MSG_PACKET,
                        (
                            link_id,
                            pkt.depart,
                            pkt.kind,
                            pkt.seq,
                            pkt.size,
                            rf,
                            pkt.hop,
                            pkt.sent_time,
                            pkt.ecn,
                            pkt.trimmed,
                            key,
                            spec,
                        ),
                    ),
                )
            )
            self._packet_free.append(pkt)
        self._out_packets.clear()
        for dest, key, seq, fire in self._loss_out:
            msgs.append((dest, (fire, _MSG_LOSS, (key, seq, fire))))
        self._loss_out.clear()
        return msgs


# ---------------------------------------------------------------- the runner
class ShardRunner:
    """One shard's scheduler + backend, driven window-by-window."""

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        schedule: GoalSchedule,
        config: SimulationConfig,
        op_groups: Optional[List[List[int]]],
    ) -> None:
        self.backend = ShardPacketBackend(plan, shard_id)
        self.scheduler = GoalScheduler(
            schedule,
            backend=self.backend,
            config=config,
            validate=False,  # the driving scheduler already validated
            op_groups=op_groups,
            ranks=plan.shard_ranks[shard_id],
        )

    def start(self) -> Optional[int]:
        self.scheduler.start()
        self.backend._on_complete = self.scheduler.completion_callback()
        return self.backend.next_event_time()

    def advance(
        self,
        until: int,
        inbox: Sequence[Tuple],
        epochs: Sequence[Tuple] = (),
        snap_at: Optional[int] = None,
        load_view: Optional["np.ndarray"] = None,
    ) -> Tuple[List[Tuple[int, Tuple]], Optional[int], Optional["np.ndarray"]]:
        snap = self.backend.advance_window(until, inbox, epochs, snap_at, load_view)
        return self.backend.drain_outbox(), self.backend.next_event_time(), snap

    def collect(self) -> Tuple[SimulationResult, int]:
        return self.scheduler.finish(0.0), self.backend.events.executed


# worker-process entry points: one ShardRunner pinned per single-worker pool
_RUNNER: Optional[ShardRunner] = None

# Boot payload for fork-started workers.  A GoalSchedule can be tens of MB
# pickled; on platforms with fork() the children inherit this module global
# at fork time (copy-on-write) so the driver never serialises the schedule
# at all.  Spawn-based platforms pass the payload through ``submit`` instead.
_BOOT: Optional[Tuple] = None


def _worker_start(args: Tuple) -> Optional[int]:
    global _RUNNER
    shard_id, boot = args
    if boot is None:
        boot = _BOOT  # inherited from the driver process at fork() time
    plan, schedule, config, op_groups = boot
    _RUNNER = ShardRunner(shard_id, plan, schedule, config, op_groups)
    return _RUNNER.start()


def _worker_advance(
    args: Tuple,
) -> Tuple[List[Tuple[int, Tuple]], Optional[int], Optional["np.ndarray"]]:
    return _RUNNER.advance(*args)


def _worker_collect(_arg: Any) -> Tuple[SimulationResult, int]:
    return _RUNNER.collect()


# ---------------------------------------------------------------- the driver
def run_sharded(
    schedule: GoalSchedule,
    config: SimulationConfig,
    op_groups: Optional[List[List[int]]] = None,
    window_log: Optional[List[Tuple[int, int, Tuple[int, ...]]]] = None,
) -> Tuple[SimulationResult, int]:
    """Simulate ``schedule`` across ``config.shards`` processes.

    Returns ``(result, events_executed)`` where the event count sums every
    shard's loop.  Spawns one single-worker process pool per shard (the
    same infrastructure — and fallback error set — as the sweep executor);
    when worker processes cannot be spawned the shards run round-robin in
    this process, which preserves results exactly (the window protocol is
    deterministic either way) at single-core speed.

    ``window_log``, when given a list, receives one
    ``(floor, until, epoch_times)`` triple per barrier window —
    ``epoch_times`` names the fault epochs applied at that barrier.  The
    property suite uses it to check that no window edge ever crosses an
    unconsumed fault epoch and that every edge respects the lookahead.
    """
    from repro.network.routing import ROUTING_STRATEGIES
    from repro.sweep import pool_fallback_errors

    wall_start = _time.perf_counter()
    topology = build_topology(config, schedule.num_ranks)
    shards = min(config.shards, topology.num_hosts)
    plan = plan_shards(topology, schedule.num_ranks, shards)
    _validate_sharded(config, plan)
    if shards < 2:
        # degenerate clamp (single-host topology): serial engine, exact
        scheduler = GoalScheduler(
            schedule,
            backend="htsim",
            config=config.replace(shards=1),
            validate=False,
            op_groups=op_groups,
        )
        result = scheduler.run()
        return result, scheduler.events_executed

    global _BOOT
    runners: Optional[List[ShardRunner]] = None
    pools: List[Any] = []
    next_times: List[Optional[int]]
    boot = (plan, schedule, config, op_groups)
    try:
        from concurrent.futures import ProcessPoolExecutor

        fork_ctx = None
        try:
            import multiprocessing

            fork_ctx = multiprocessing.get_context("fork")
        except (ImportError, ValueError):
            fork_ctx = None
        if fork_ctx is not None:
            # fork-started workers read _BOOT from their copy-on-write image
            _BOOT = boot
            pools = [
                ProcessPoolExecutor(max_workers=1, mp_context=fork_ctx)
                for _ in range(shards)
            ]
            futures = [
                pools[i].submit(_worker_start, (i, None)) for i in range(shards)
            ]
        else:
            pools = [ProcessPoolExecutor(max_workers=1) for _ in range(shards)]
            futures = [
                pools[i].submit(_worker_start, (i, boot)) for i in range(shards)
            ]
        next_times = [f.result() for f in futures]
    except (ImportError,) + pool_fallback_errors() as exc:
        for pool in pools:
            pool.shutdown(wait=False)
        pools = []
        warnings.warn(
            f"sharded packet engine: worker pool unavailable ({exc!r}); "
            "running shards in-process",
            RuntimeWarning,
            stacklevel=2,
        )
        runners = [
            ShardRunner(i, plan, schedule, config, op_groups) for i in range(shards)
        ]
        next_times = [r.start() for r in runners]

    lookahead = plan.lookahead
    inboxes: List[List[Tuple]] = [[] for _ in range(shards)]

    # fault epochs, resolved once on the driver's pristine planning topology
    # (resolution is name -> link ids, independent of applied fault state)
    epochs = config.faults.grouped_events(topology) if config.faults else []
    epoch_idx = 0

    # load snapshots only exist when the routing strategy reads link loads;
    # the cadence default is a property of the topology alone, never of the
    # shard layout, so results stay shard-count-invariant
    strategy = ROUTING_STRATEGIES.get(config.routing)
    snap_interval = 0
    if strategy is not None and strategy.needs_link_load:
        snap_interval = config.load_snapshot_ns or topology.min_link_latency()
    snap_time = 0  # cadence boundary of the view the shards currently hold
    pending_view: Optional["np.ndarray"] = None  # merged, awaiting broadcast

    def _advance_all(
        until: int, window_epochs: Tuple, snap_at: Optional[int]
    ) -> List["np.ndarray"]:
        nonlocal inboxes, next_times, pending_view
        if runners is not None:
            outs = [
                r.advance(until, inboxes[i], window_epochs, snap_at, pending_view)
                for i, r in enumerate(runners)
            ]
        else:
            futs = [
                pools[i].submit(
                    _worker_advance,
                    (until, inboxes[i], window_epochs, snap_at, pending_view),
                )
                for i in range(shards)
            ]
            outs = [f.result() for f in futs]
        pending_view = None
        inboxes = [[] for _ in range(shards)]
        next_times = []
        views: List["np.ndarray"] = []
        for out_msgs, nt, snap in outs:
            next_times.append(nt)
            if snap is not None:
                views.append(snap)
            for dest, msg in out_msgs:
                inboxes[dest].append(msg)
        return views

    try:
        while True:
            window_floor: Optional[int] = None
            for t in next_times:
                if t is not None and (window_floor is None or t < window_floor):
                    window_floor = t
            for box in inboxes:
                for msg in box:
                    if window_floor is None or msg[0] < window_floor:
                        window_floor = msg[0]
            next_fault = epochs[epoch_idx][0] if epoch_idx < len(epochs) else None
            if window_floor is None and next_fault is None:
                break  # every shard idle, no traffic or epochs left: done
            # earliest upcoming activity of any kind; post-traffic epochs
            # must still apply (a convergence wave records its transition
            # even when no packet is left to witness it)
            effective = window_floor
            if effective is None or (next_fault is not None and next_fault < effective):
                effective = next_fault
            if snap_interval:
                # idle-gap jump: refresh the snapshot at the last cadence
                # boundary strictly before the next activity in one empty
                # window instead of stepping cadence-by-cadence across it
                target = (effective - 1) // snap_interval * snap_interval
                if target > snap_time:
                    if window_log is not None:
                        window_log.append((effective, target, ()))
                    views = _advance_all(target, (), target)
                    snap_time = target
                    pending_view = _merge_views(views)
                    continue
            window_epochs: Tuple = ()
            if next_fault is not None and (
                window_floor is None or next_fault <= window_floor
            ):
                # the global floor reached the epoch: every event before it
                # has run on every shard, none at/after it has — apply it at
                # this barrier everywhere (the serial fault-first tie-break)
                window_epochs = (epochs[epoch_idx],)
                epoch_idx += 1
            base = window_floor if window_floor is not None else next_fault
            until = base + lookahead
            if epoch_idx < len(epochs) and epochs[epoch_idx][0] - 1 < until:
                # never run past an unconsumed epoch
                until = epochs[epoch_idx][0] - 1
            snap_at = None
            if snap_interval and snap_time + snap_interval <= until:
                # never run past the snapshot the window's draws must read
                until = snap_time + snap_interval
                snap_at = until
            if window_log is not None:
                window_log.append(
                    (base, until, tuple(t for t, _ in window_epochs))
                )
            views = _advance_all(until, window_epochs, snap_at)
            if snap_at is not None:
                snap_time = snap_at
                pending_view = _merge_views(views)
        if runners is not None:
            collected = [r.collect() for r in runners]
        else:
            futures = [pools[i].submit(_worker_collect, None) for i in range(shards)]
            collected = [f.result() for f in futures]
    finally:
        # always reap the children: their peak RSS must be visible to
        # RUSAGE_CHILDREN by the time the bench harness measures
        for pool in pools:
            pool.shutdown()
        _BOOT = None

    wall = _time.perf_counter() - wall_start
    return _merge_results(collected, schedule, wall), sum(c[1] for c in collected)


def _merge_views(views: Sequence["np.ndarray"]) -> "np.ndarray":
    """Sum per-shard owned-link snapshots into the global load view.

    Every link is owned by exactly one shard (its source device's owner)
    and each shard reports zeros elsewhere, so the sum is the exact union.
    """
    merged = views[0]
    for v in views[1:]:
        merged = merged + v
    return merged


def _merge_results(
    collected: Sequence[Tuple[SimulationResult, int]],
    schedule: GoalSchedule,
    wall: float,
) -> SimulationResult:
    """Fold per-shard results into one :class:`SimulationResult`.

    Counters sum (each event is counted at exactly one shard), per-rank and
    per-group finish times max-merge (each rank completes at one shard),
    and message records concatenate in a canonical sort.  Convergence
    records are identical on every shard (the advertisement wave replays
    on each one's full-topology replica), so shard 0's copy is canonical.
    """
    results = [c[0] for c in collected]
    stats: NetworkStats = results[0].stats
    for r in results[1:]:
        stats = stats.merge(r.stats)
    rank_finish = [0] * schedule.num_ranks
    groups: Dict[int, int] = {}
    jobs: Dict[int, JobStats] = {}
    records: List = []
    finish = 0
    ops = 0
    for r in results:
        if r.finish_time_ns > finish:
            finish = r.finish_time_ns
        ops += r.ops_completed
        for i, t in enumerate(r.rank_finish_times_ns):
            if t > rank_finish[i]:
                rank_finish[i] = t
        for g, t in r.group_finish_times_ns.items():
            if t > groups.get(g, -1):
                groups[g] = t
        for job, js in r.job_stats.items():
            agg = jobs.get(job)
            if agg is None:
                jobs[job] = JobStats(
                    job=job,
                    messages_delivered=js.messages_delivered,
                    bytes_delivered=js.bytes_delivered,
                    link_bytes=dict(js.link_bytes),
                )
            else:
                agg.messages_delivered += js.messages_delivered
                agg.bytes_delivered += js.bytes_delivered
                for name, b in js.link_bytes.items():
                    agg.link_bytes[name] = agg.link_bytes.get(name, 0) + b
        records.extend(r.message_records)
    records.sort(key=lambda m: (m.completion_time, m.src, m.dst, m.tag))
    return SimulationResult(
        finish_time_ns=finish,
        rank_finish_times_ns=rank_finish,
        stats=stats,
        message_records=records,
        ops_completed=ops,
        backend="htsim",
        wall_clock_s=wall,
        job_stats=jobs,
        group_finish_times_ns=groups,
        convergence_records=list(results[0].convergence_records),
    )

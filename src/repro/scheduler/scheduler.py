"""The GOAL scheduler (the paper's "workload simulation pipeline").

The scheduler walks every rank's dependency DAG and issues operations to the
configured network backend as soon as their dependencies are satisfied.  The
backend reports completions back (``eventOver``), which unlocks successor
vertices; the loop continues until every vertex of every rank has executed.

The scheduler is backend-agnostic: it performs no timing itself beyond
propagating completion times as the ready times of successors.  Compute
streams, LogGOPS overheads, queues and congestion control all live behind
the :class:`~repro.network.backend.NetworkBackend` API.
"""
from __future__ import annotations

import time as _time
from typing import Dict, List, Optional, Sequence

from repro.goal.ops import OpType
from repro.goal.schedule import GoalSchedule
from repro.goal.validate import validate_schedule
from repro.network.backend import NetworkBackend, SimulationResult, create_backend
from repro.network.config import SimulationConfig


class SchedulerDeadlockError(RuntimeError):
    """Raised when the simulation drains without executing every vertex.

    This indicates a structural problem in the GOAL schedule (e.g. a receive
    whose matching send never happens, or a dependency cycle across ranks via
    messages).  The exception carries per-rank counts of stuck vertices.
    """

    def __init__(self, message: str, stuck_per_rank: Dict[int, int]) -> None:
        super().__init__(message)
        self.stuck_per_rank = stuck_per_rank


class GoalScheduler:
    """Replays a :class:`~repro.goal.schedule.GoalSchedule` on a backend.

    Parameters
    ----------
    schedule:
        The GOAL program to simulate.
    backend:
        A :class:`NetworkBackend` instance, or a backend name accepted by
        :func:`repro.network.backend.create_backend` (``"lgs"``, ``"htsim"``).
    config:
        Simulation configuration; a default-constructed
        :class:`SimulationConfig` is used when omitted.
    validate:
        Run :func:`repro.goal.validate.validate_schedule` before simulating.
    op_groups:
        Optional vertex→group mapping, one list of group ids per rank (same
        shape as the rank's op list; ``-1`` = ungrouped).  When given, the
        result carries the completion time of each group — the co-tenancy
        engine uses groups to attribute per-job completion even when several
        jobs share a rank.  Completion tracking adds one dict update per
        finished op, so the hot path is untouched when the mapping is absent.
    ranks:
        Restrict issuing (and the completion ledger) to this subset of
        ranks.  Used by the sharded packet engine, where each shard's
        scheduler walks only the DAGs of the ranks it owns — global op ids
        and tags stay identical to the unrestricted scheduler because the
        full schedule still defines the offsets.  ``None`` (the default)
        schedules every rank.
    """

    def __init__(
        self,
        schedule: GoalSchedule,
        backend: "NetworkBackend | str" = "lgs",
        config: Optional[SimulationConfig] = None,
        validate: bool = True,
        op_groups: Optional[List[List[int]]] = None,
        ranks: Optional[Sequence[int]] = None,
    ) -> None:
        self.schedule = schedule
        self.config = config if config is not None else SimulationConfig()
        self.backend = create_backend(backend) if isinstance(backend, str) else backend
        if validate:
            validate_schedule(schedule)

        # Global vertex ids: rank r, vertex v  ->  offset[r] + v.  Offsets
        # always cover the full schedule so op ids are identical whether or
        # not issuing is restricted to a rank subset.
        self._offsets: List[int] = []
        total = 0
        for rank in schedule.ranks:
            self._offsets.append(total)
            total += len(rank)
        self._ranks = (
            list(range(schedule.num_ranks)) if ranks is None else sorted(ranks)
        )
        self._rank_set = None if ranks is None else frozenset(self._ranks)
        self._total_ops = (
            total
            if ranks is None
            else sum(len(schedule.ranks[r]) for r in self._ranks)
        )

        self._indegree: List[List[int]] = [rank.in_degrees() for rank in schedule.ranks]
        self._successors: List[List[List[int]]] = [rank.successors() for rank in schedule.ranks]
        self._ops = [rank.ops for rank in schedule.ranks]
        # bound issue methods, resolved once instead of twice per operation
        self._issue_calc = self.backend.issue_calc
        self._issue_send = self.backend.issue_send
        self._issue_recv = self.backend.issue_recv
        self._completed = 0
        self._issued: List[List[bool]] = [[False] * len(rank) for rank in schedule.ranks]
        self._finish_time = 0
        self._sharded_events: Optional[int] = None

        self._op_groups = op_groups
        self._group_finish: Dict[int, int] = {}
        if op_groups is not None:
            if len(op_groups) != schedule.num_ranks or any(
                len(groups) != len(rank)
                for groups, rank in zip(op_groups, schedule.ranks)
            ):
                raise ValueError(
                    "op_groups must provide one group id per op of every rank"
                )

    # ------------------------------------------------------------------ public
    def run(self) -> SimulationResult:
        """Simulate the schedule to completion and return the result."""
        if self.config.shards > 1:
            # conservative-window parallel packet engine (docs/scaling.md):
            # the driver builds one rank-restricted scheduler per shard and
            # steps their event loops in lookahead windows via start()/
            # finish() — never run(), so this dispatch cannot recurse.
            if getattr(self.backend, "name", "") != "htsim":
                raise ValueError(
                    f"shards > 1 requires the packet backend ('htsim'), got "
                    f"{getattr(self.backend, 'name', '?')!r}; the message-level "
                    "backend is already fast enough single-process"
                )
            from repro.network.packet.sharded import run_sharded

            result, self._sharded_events = run_sharded(
                self.schedule, self.config, op_groups=self._op_groups
            )
            return result
        wall_start = _time.perf_counter()
        self.start()
        self.backend.run(self.completion_callback())
        wall_elapsed = _time.perf_counter() - wall_start
        return self.finish(wall_elapsed)

    def start(self) -> None:
        """Set up the backend and issue every root vertex (ready at t=0).

        Together with :meth:`completion_callback` and :meth:`finish` this is
        the decomposed form of :meth:`run` for callers that drive the
        backend's event loop themselves (the sharded engine advances it in
        lookahead windows between barriers).
        """
        self.backend.setup(self.schedule.num_ranks, self.config)
        ranks = self.schedule.ranks
        for r in self._ranks:
            rank = ranks[r]
            for vertex in rank.roots():
                self._issue(rank.rank, vertex, ready_time=0)

    def completion_callback(self):
        """The ``eventOver`` callback the backend must call per finished op."""
        return (
            self._on_complete if self._op_groups is None else self._on_complete_grouped
        )

    def finish(self, wall_elapsed: float = 0.0) -> SimulationResult:
        """Verify completion after the event loop drained; assemble the result."""
        if self._completed != self._total_ops:
            stuck = self._stuck_per_rank()
            raise SchedulerDeadlockError(
                f"simulation deadlocked: {self._total_ops - self._completed} of "
                f"{self._total_ops} operations never completed "
                f"(stuck vertices per rank: {stuck})",
                stuck,
            )

        rank_finish = [0] * self.schedule.num_ranks
        backend_finish = getattr(self.backend, "rank_finish", None)
        if backend_finish is not None:
            rank_finish = list(backend_finish)

        return SimulationResult(
            finish_time_ns=self._finish_time,
            rank_finish_times_ns=rank_finish,
            stats=self.backend.collect_stats(),
            message_records=self.backend.collect_message_records(),
            ops_completed=self._completed,
            backend=self.backend.name,
            wall_clock_s=wall_elapsed,
            job_stats=self.backend.per_job_stats(),
            group_finish_times_ns=dict(self._group_finish),
            convergence_records=list(getattr(self.backend, "convergence_events", ())),
        )

    @property
    def events_executed(self) -> int:
        """Events executed by the backend's loop(s); sharded runs sum shards."""
        if self._sharded_events is not None:
            return self._sharded_events
        events = getattr(self.backend, "events", None)
        return getattr(events, "executed", 0)

    # ---------------------------------------------------------------- internals
    def _issue(self, rank: int, vertex: int, ready_time: int) -> None:
        issued = self._issued[rank]
        if issued[vertex]:
            raise RuntimeError(f"vertex {vertex} of rank {rank} issued twice")
        issued[vertex] = True
        op = self._ops[rank][vertex]
        op_id = self._offsets[rank] + vertex
        kind = op.kind
        if kind is OpType.CALC:
            self._issue_calc(rank, op.cpu, op.size, op_id, ready_time)
        elif kind is OpType.SEND:
            self._issue_send(rank, op.peer, op.size, op.tag, op.cpu, op_id, ready_time)
        else:
            self._issue_recv(rank, op.peer, op.size, op.tag, op.cpu, op_id, ready_time)

    def _on_complete(self, time: int, rank: int, op_id: int) -> None:
        """``eventOver``: unlock and issue successors of a finished vertex."""
        vertex = op_id - self._offsets[rank]
        self._completed += 1
        if time > self._finish_time:
            self._finish_time = time
        indegree = self._indegree[rank]
        for succ in self._successors[rank][vertex]:
            left = indegree[succ] - 1
            indegree[succ] = left
            if left == 0:
                self._issue(rank, succ, ready_time=time)

    def _on_complete_grouped(self, time: int, rank: int, op_id: int) -> None:
        """``eventOver`` variant that additionally tracks per-group finish times."""
        group = self._op_groups[rank][op_id - self._offsets[rank]]
        if group >= 0 and time > self._group_finish.get(group, -1):
            self._group_finish[group] = time
        self._on_complete(time, rank, op_id)

    def _stuck_per_rank(self) -> Dict[int, int]:
        stuck: Dict[int, int] = {}
        for r in self._ranks:
            count = sum(1 for issued in self._issued[r] if not issued)
            if count:
                stuck[r] = count
        return stuck


def simulate(
    schedule: GoalSchedule,
    backend: "NetworkBackend | str" = "lgs",
    config: Optional[SimulationConfig] = None,
    validate: bool = True,
    op_groups: Optional[List[List[int]]] = None,
) -> SimulationResult:
    """Convenience wrapper: construct a :class:`GoalScheduler` and run it."""
    return GoalScheduler(
        schedule, backend=backend, config=config, validate=validate, op_groups=op_groups
    ).run()

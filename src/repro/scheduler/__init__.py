"""GOAL scheduler: replays GOAL schedules on a network backend."""
from repro.scheduler.scheduler import GoalScheduler, SchedulerDeadlockError, simulate

__all__ = ["GoalScheduler", "SchedulerDeadlockError", "simulate"]

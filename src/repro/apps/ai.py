"""Distributed LLM-training application models (the paper's AI workloads).

The models execute the communication skeleton of large-model training under
the parallelisation strategies used in the paper's Fig. 8 — tensor
parallelism (TP), pipeline parallelism (PP), data parallelism (DP) and expert
parallelism (EP) — and record the resulting NCCL operations per GPU and CUDA
stream through :class:`~repro.tracers.nccl.NcclTracer`, producing the
nsys-like reports that Stage 2 of the GOAL pipeline consumes.

Mapping of operations to CUDA streams (mirroring a Megatron-style trainer):

* stream 0 — compute kernels, TP allreduces, EP all-to-alls and PP
  activation/gradient sends/receives (all data-dependent on the compute),
* stream 1 — DP gradient-bucket allreduces, which overlap with backward
  computation.

Cross-stream data dependencies are *not* recorded, matching the limitation
the paper acknowledges in §7 ("data dependencies among CUDA kernels across
streams are not currently captured").

Presets for the paper's workloads (Llama 7B / 70B, Mistral 8x7B, MoE 8x13B /
8x70B, DLRM) are provided with a ``scale`` knob that shrinks hidden sizes and
layer counts so the resulting GOAL schedules remain simulable in pure Python;
the communication *structure* per iteration is unchanged.

The traces record *which* collectives run, not how they are lowered: the
NCCL schedule generator decomposes them afterwards, either through the
NCCL chunked ring/tree pipelines or — via its ``collective_algorithm``
knob (``Atlahs.run_ai_training(collective_algorithm=...)``,
``atlahs ai --collective-algorithm``) — through the
:mod:`repro.collectives.algorithms` registry, whose hierarchical variants
use the ``gpus_per_node`` recorded here as the locality hierarchy (see
``docs/collectives.md``).
"""
from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tracers.nccl import NcclTracer, NsysReport

#: Effective per-GPU throughput used to turn model FLOPs into kernel times.
GPU_TFLOPS = 100.0
#: Bytes per parameter / activation element (bf16).
BYTES_PER_ELEMENT = 2


@dataclass(frozen=True)
class ParallelismConfig:
    """Parallelisation strategy of a training run (the TP/PP/DP/EP of Fig. 8)."""

    tp: int = 1
    pp: int = 1
    dp: int = 1
    ep: int = 1
    microbatches: int = 4
    global_batch: int = 32

    def __post_init__(self) -> None:
        for name in ("tp", "pp", "dp", "ep", "microbatches", "global_batch"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.ep > self.dp:
            raise ValueError("expert parallelism cannot exceed data parallelism")
        if self.dp % self.ep:
            raise ValueError("dp must be a multiple of ep")
        if self.global_batch % (self.dp * self.microbatches):
            raise ValueError("global_batch must be divisible by dp * microbatches")

    @property
    def num_gpus(self) -> int:
        return self.tp * self.pp * self.dp

    @property
    def microbatch_size(self) -> int:
        return self.global_batch // (self.dp * self.microbatches)

    def describe(self) -> str:
        return f"TP{self.tp} PP{self.pp} DP{self.dp} EP{self.ep}"


@dataclass(frozen=True)
class ModelConfig:
    """Transformer model shape (optionally Mixture-of-Experts).

    ``moe_experts == 0`` means a dense model; otherwise every
    ``moe_every``-th layer is an MoE layer with that many experts.
    """

    name: str
    num_layers: int
    hidden: int
    seq_len: int
    moe_experts: int = 0
    moe_every: int = 2

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden <= 0 or self.seq_len <= 0:
            raise ValueError("num_layers, hidden and seq_len must be positive")
        if self.moe_experts < 0 or self.moe_every <= 0:
            raise ValueError("moe_experts must be >= 0 and moe_every positive")

    # -- derived quantities ------------------------------------------------------
    def params_per_layer(self) -> int:
        """Approximate parameter count of one transformer layer."""
        return 12 * self.hidden * self.hidden

    def flops_forward_layer(self, tokens: int) -> float:
        """Approximate forward FLOPs of one layer for ``tokens`` tokens."""
        return 12.0 * tokens * self.hidden * self.hidden

    def is_moe_layer(self, layer: int) -> bool:
        return self.moe_experts > 0 and (layer % self.moe_every == 0)

    def scaled(self, factor: float) -> "ModelConfig":
        """Return a proportionally smaller model (both layers and hidden size)."""
        if factor <= 0 or factor > 1:
            raise ValueError("scale factor must be in (0, 1]")
        return ModelConfig(
            name=self.name,
            num_layers=max(2, int(round(self.num_layers * factor))),
            hidden=max(64, int(round(self.hidden * math.sqrt(factor)))),
            seq_len=self.seq_len,
            moe_experts=self.moe_experts,
            moe_every=self.moe_every,
        )


# ---------------------------------------------------------------------------
# model presets (paper Fig. 8 / Table 1 workloads)
# ---------------------------------------------------------------------------
def llama_7b() -> ModelConfig:
    return ModelConfig(name="llama-7b", num_layers=32, hidden=4096, seq_len=2048)


def llama_70b() -> ModelConfig:
    return ModelConfig(name="llama-70b", num_layers=80, hidden=8192, seq_len=2048)


def mistral_8x7b() -> ModelConfig:
    return ModelConfig(name="mistral-8x7b", num_layers=32, hidden=4096, seq_len=2048, moe_experts=8)


def moe_8x13b() -> ModelConfig:
    return ModelConfig(name="moe-8x13b", num_layers=40, hidden=5120, seq_len=2048, moe_experts=8)


def moe_8x70b() -> ModelConfig:
    return ModelConfig(name="moe-8x70b", num_layers=80, hidden=8192, seq_len=2048, moe_experts=8)


def dlrm() -> ModelConfig:
    # DLRM is not a transformer; reuse the container with a small "hidden"
    # standing in for the MLP width.  The DLRM trainer below interprets it.
    return ModelConfig(name="dlrm", num_layers=8, hidden=1024, seq_len=1)


MODEL_PRESETS = {
    "llama-7b": llama_7b,
    "llama-70b": llama_70b,
    "mistral-8x7b": mistral_8x7b,
    "moe-8x13b": moe_8x13b,
    "moe-8x70b": moe_8x70b,
    "dlrm": dlrm,
}


# ---------------------------------------------------------------------------
# the trainer model
# ---------------------------------------------------------------------------
class LlmTrainer:
    """Emits the NCCL trace of a (possibly MoE) transformer training run.

    Parameters
    ----------
    model / parallelism:
        Model shape and parallelisation strategy.
    gpus_per_node:
        GPUs per physical node (Stage 4 grouping granularity).
    iterations:
        Training iterations to trace (after the paper's warm-up discipline,
        only the steady-state iterations are traced).
    gradient_buckets:
        Number of DP allreduce buckets per pipeline stage.
    compute_jitter:
        Relative log-normal jitter applied to kernel durations.
    seed:
        RNG seed for the jitter.
    """

    COMPUTE_STREAM = 0
    DP_STREAM = 1

    def __init__(
        self,
        model: ModelConfig,
        parallelism: ParallelismConfig,
        gpus_per_node: int = 4,
        iterations: int = 2,
        gradient_buckets: int = 4,
        compute_jitter: float = 0.02,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.par = parallelism
        self.gpus_per_node = gpus_per_node
        self.iterations = iterations
        self.gradient_buckets = max(1, gradient_buckets)
        self.compute_jitter = compute_jitter
        self.rng = np.random.default_rng(seed)
        if model.moe_experts and parallelism.ep > model.moe_experts:
            raise ValueError("ep cannot exceed the number of experts")

    # -- GPU / communicator layout ------------------------------------------------
    def gpu_id(self, dp: int, pp: int, tp: int) -> int:
        return (dp * self.par.pp + pp) * self.par.tp + tp

    def _layers_of_stage(self, pp: int) -> List[int]:
        """Model layers owned by pipeline stage ``pp`` (contiguous split)."""
        per_stage = self.model.num_layers // self.par.pp
        extra = self.model.num_layers % self.par.pp
        start = pp * per_stage + min(pp, extra)
        count = per_stage + (1 if pp < extra else 0)
        return list(range(start, start + count))

    def _define_communicators(self, tracer: NcclTracer) -> Dict[str, Dict[Tuple[int, ...], int]]:
        """Register TP / DP / EP communicators; return lookup maps."""
        comms: Dict[str, Dict[Tuple[int, ...], int]] = {"tp": {}, "dp": {}, "ep": {}}
        next_id = 1
        if self.par.tp > 1:
            for dp in range(self.par.dp):
                for pp in range(self.par.pp):
                    members = [self.gpu_id(dp, pp, t) for t in range(self.par.tp)]
                    tracer.define_communicator(next_id, members)
                    comms["tp"][(dp, pp)] = next_id
                    next_id += 1
        if self.par.dp > 1:
            for pp in range(self.par.pp):
                for tp in range(self.par.tp):
                    members = [self.gpu_id(d, pp, tp) for d in range(self.par.dp)]
                    tracer.define_communicator(next_id, members)
                    comms["dp"][(pp, tp)] = next_id
                    next_id += 1
        if self.model.moe_experts and self.par.ep > 1:
            groups = self.par.dp // self.par.ep
            for g in range(groups):
                for pp in range(self.par.pp):
                    for tp in range(self.par.tp):
                        members = [
                            self.gpu_id(g * self.par.ep + e, pp, tp) for e in range(self.par.ep)
                        ]
                        tracer.define_communicator(next_id, members)
                        comms["ep"][(g, pp, tp)] = next_id
                        next_id += 1
        return comms

    # -- sizes and times ------------------------------------------------------------
    def _tokens_per_microbatch(self) -> int:
        return self.par.microbatch_size * self.model.seq_len

    def _activation_bytes(self) -> int:
        return max(1, self._tokens_per_microbatch() * self.model.hidden * BYTES_PER_ELEMENT // self.par.tp)

    def _layer_fwd_ns(self) -> float:
        flops = self.model.flops_forward_layer(self._tokens_per_microbatch()) / self.par.tp
        return flops / (GPU_TFLOPS * 1e3)  # TFLOPs -> flops per ns

    def _grad_bucket_bytes(self, pp: int) -> int:
        layers = len(self._layers_of_stage(pp))
        stage_params = layers * self.model.params_per_layer() // self.par.tp
        return max(1, stage_params * BYTES_PER_ELEMENT // self.gradient_buckets)

    def _jitter(self) -> float:
        return float(self.rng.lognormal(mean=0.0, sigma=self.compute_jitter))

    # -- the trace ------------------------------------------------------------------
    def trace(self) -> NsysReport:
        """Execute the training skeleton and return the nsys-like report."""
        par = self.par
        tracer = NcclTracer(par.num_gpus, gpus_per_node=self.gpus_per_node, name=self.model.name)
        comms = self._define_communicators(tracer)

        for _ in range(self.iterations):
            self._trace_iteration(tracer, comms)
        return tracer.finish()

    def _trace_iteration(self, tracer: NcclTracer, comms) -> None:
        par, model = self.par, self.model
        act_bytes = self._activation_bytes()
        fwd_ns = self._layer_fwd_ns()

        for dp in range(par.dp):
            for pp in range(par.pp):
                layers = self._layers_of_stage(pp)
                for tp in range(par.tp):
                    gpu = self.gpu_id(dp, pp, tp)
                    self._trace_gpu_iteration(
                        tracer, comms, gpu, dp, pp, tp, layers, act_bytes, fwd_ns
                    )

    def _trace_gpu_iteration(
        self,
        tracer: NcclTracer,
        comms,
        gpu: int,
        dp: int,
        pp: int,
        tp: int,
        layers: List[int],
        act_bytes: int,
        fwd_ns: float,
    ) -> None:
        par, model = self.par, self.model
        s0 = self.COMPUTE_STREAM
        ep_groups = par.dp // par.ep if par.ep else par.dp

        # ---- forward passes for all microbatches (GPipe-style schedule) ----
        for mb in range(par.microbatches):
            if pp > 0:
                peer = self.gpu_id(dp, pp - 1, tp)
                tracer.nccl(gpu, s0, "Recv", act_bytes, peer=peer)
            for layer in layers:
                tracer.compute(gpu, s0, int(fwd_ns * self._jitter()), name=f"fwd_layer{layer}")
                if par.tp > 1:
                    comm = comms["tp"][(dp, pp)]
                    tracer.nccl(gpu, s0, "AllReduce", act_bytes, comm=comm)
                if model.is_moe_layer(layer) and par.ep > 1:
                    comm = comms["ep"][(dp // par.ep, pp, tp)]
                    per_pair = max(1, act_bytes // par.ep)
                    tracer.nccl(gpu, s0, "AllToAll", per_pair, comm=comm)
                    tracer.compute(gpu, s0, int(fwd_ns * 0.5 * self._jitter()), name=f"expert_fwd{layer}")
                    tracer.nccl(gpu, s0, "AllToAll", per_pair, comm=comm)
            if pp < par.pp - 1:
                peer = self.gpu_id(dp, pp + 1, tp)
                tracer.nccl(gpu, s0, "Send", act_bytes, peer=peer)

        # ---- backward passes ----
        for mb in range(par.microbatches):
            if pp < par.pp - 1:
                peer = self.gpu_id(dp, pp + 1, tp)
                tracer.nccl(gpu, s0, "Recv", act_bytes, peer=peer)
            for layer in reversed(layers):
                tracer.compute(gpu, s0, int(2.0 * fwd_ns * self._jitter()), name=f"bwd_layer{layer}")
                if par.tp > 1:
                    comm = comms["tp"][(dp, pp)]
                    tracer.nccl(gpu, s0, "AllReduce", act_bytes, comm=comm)
                if model.is_moe_layer(layer) and par.ep > 1:
                    comm = comms["ep"][(dp // par.ep, pp, tp)]
                    per_pair = max(1, act_bytes // par.ep)
                    tracer.nccl(gpu, s0, "AllToAll", per_pair, comm=comm)
                    tracer.compute(gpu, s0, int(fwd_ns * self._jitter()), name=f"expert_bwd{layer}")
                    tracer.nccl(gpu, s0, "AllToAll", per_pair, comm=comm)
            if pp > 0:
                peer = self.gpu_id(dp, pp - 1, tp)
                tracer.nccl(gpu, s0, "Send", act_bytes, peer=peer)

        # ---- data-parallel gradient synchronisation (overlapping stream) ----
        if par.dp > 1:
            comm = comms["dp"][(pp, tp)]
            bucket_bytes = self._grad_bucket_bytes(pp)
            # gradients become available towards the end of the backward pass
            tracer.advance_to(gpu, self.DP_STREAM, tracer.now(gpu, self.COMPUTE_STREAM))
            for _ in range(self.gradient_buckets):
                tracer.nccl(gpu, self.DP_STREAM, "AllReduce", bucket_bytes, comm=comm)

        # ---- optimizer step ----
        tracer.compute(
            gpu,
            s0,
            int(0.2 * fwd_ns * len(layers) * self._jitter()),
            name="optimizer_step",
        )


class DlrmTrainer:
    """DLRM-style recommendation-model training (Table 1's DLRM entry).

    Per iteration every GPU performs an embedding-exchange all-to-all, dense
    MLP compute, a second all-to-all for the backward pass, and a dense-layer
    gradient allreduce across all GPUs.
    """

    def __init__(
        self,
        num_gpus: int,
        gpus_per_node: int = 4,
        iterations: int = 2,
        embedding_bytes_per_gpu: int = 1 << 20,
        mlp_compute_ns: int = 400_000,
        dense_grad_bytes: int = 4 << 20,
        seed: int = 0,
    ) -> None:
        if num_gpus <= 1:
            raise ValueError("DLRM model parallelism needs at least 2 GPUs")
        self.num_gpus = num_gpus
        self.gpus_per_node = gpus_per_node
        self.iterations = iterations
        self.embedding_bytes_per_gpu = embedding_bytes_per_gpu
        self.mlp_compute_ns = mlp_compute_ns
        self.dense_grad_bytes = dense_grad_bytes
        self.rng = np.random.default_rng(seed)

    def trace(self) -> NsysReport:
        tracer = NcclTracer(self.num_gpus, gpus_per_node=self.gpus_per_node, name="dlrm")
        per_pair = max(1, self.embedding_bytes_per_gpu // self.num_gpus)
        for _ in range(self.iterations):
            for gpu in range(self.num_gpus):
                jitter = float(self.rng.lognormal(0.0, 0.02))
                tracer.compute(gpu, 0, int(0.3 * self.mlp_compute_ns * jitter), name="embedding_lookup")
                tracer.nccl(gpu, 0, "AllToAll", per_pair, comm=0)
                tracer.compute(gpu, 0, int(self.mlp_compute_ns * jitter), name="mlp_fwd_bwd")
                tracer.nccl(gpu, 0, "AllToAll", per_pair, comm=0)
                tracer.compute(gpu, 0, int(0.4 * self.mlp_compute_ns * jitter), name="embedding_grad")
                tracer.nccl(gpu, 0, "AllReduce", self.dense_grad_bytes, comm=0)
        return tracer.finish()

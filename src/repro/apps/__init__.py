"""Application models: the workloads the toolchain traces.

On the real systems of the paper these are the actual applications (HPCG,
LULESH, Llama training, ...) running on a cluster; here they are
communication-skeleton models that execute the same sequence of MPI / NCCL /
block-I/O operations and hand them to the tracers in :mod:`repro.tracers`.

* :mod:`repro.apps.hpc` — MPI proxy applications (CloverLeaf, HPCG, LULESH,
  LAMMPS, ICON, OpenMX),
* :mod:`repro.apps.ai` — distributed LLM training models (Llama, MoE, DLRM)
  with TP/PP/DP/EP parallelism emitting NCCL operations per GPU and CUDA
  stream,
* :mod:`repro.apps.inference` — inference-*serving* workloads: open-loop
  request arrivals (Poisson / bursty / diurnal), disaggregated
  prefill/decode phases with KV-cache transfer flows, and continuous
  batching, generating GOAL schedules with per-request op groups for SLO
  measurement.

Storage applications are represented directly by the workload generators in
:mod:`repro.tracers.storage` (the "application" there is any VM issuing block
I/O; only the request stream matters).
"""

"""Communication skeletons of the HPC proxy applications used in the paper.

Each model reproduces the *communication structure* of the real application —
which collectives and halo exchanges it performs per time step, how message
sizes scale with the per-rank problem size, and roughly how much computation
separates communication phases — and emits a liballprof-style
:class:`~repro.tracers.mpi.MpiTrace` via :class:`~repro.tracers.mpi.MpiTracer`.

The applications (paper §5.3 / Fig. 10) and their skeletons:

* **CloverLeaf** — 2-D structured hydrodynamics: 4-neighbour halo exchanges
  of several fields per step plus one 8-byte ``MPI_Allreduce`` for the time
  step; strongly compute-dominated.
* **HPCG** — conjugate gradient with a 27-point stencil: 6-neighbour halo
  exchange per SpMV, two scalar allreduces (dot products) per iteration and
  a multigrid preconditioner with shrinking halos; communication share grows
  quickly under strong scaling.
* **LULESH** — 3-D Lagrangian shock hydrodynamics on a cubic decomposition:
  face halo exchanges plus three 8-byte allreduces per step (dt reduction).
* **LAMMPS** — molecular dynamics with spatial decomposition: 6-neighbour
  atom exchanges every step, thermodynamic allreduce every ``thermo_every``
  steps.
* **ICON** — climate model: 2-D halo exchanges, frequent small allreduces
  (global diagnostics) and a periodic gather to rank 0 (output).
* **OpenMX** — DFT: dominated by collectives (alltoall of wavefunction
  coefficients and large allreduces of density matrices).

Weak vs strong scaling is selected per run: weak scaling keeps the per-rank
problem size constant, strong scaling divides a fixed global problem among
the ranks — reproducing the compute-fraction trends of Fig. 10.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.tracers.mpi import MpiTrace, MpiTracer

#: Nominal cost of processing one grid cell / atom, in nanoseconds.  Chosen so
#: that the scaled-down problem sizes used in the benchmarks produce step
#: times in the hundreds of microseconds to milliseconds range.
_DEFAULT_NS_PER_CELL = 6.0


def factor_2d(n: int) -> Tuple[int, int]:
    """Factor ``n`` ranks into the most square ``(px, py)`` grid."""
    best = (1, n)
    for px in range(1, int(math.isqrt(n)) + 1):
        if n % px == 0:
            best = (px, n // px)
    return best


def factor_3d(n: int) -> Tuple[int, int, int]:
    """Factor ``n`` ranks into the most cubic ``(px, py, pz)`` grid."""
    best = (1, 1, n)
    best_score = float("inf")
    for px in range(1, n + 1):
        if n % px:
            continue
        rem = n // px
        for py in range(1, rem + 1):
            if rem % py:
                continue
            pz = rem // py
            score = max(px, py, pz) / min(px, py, pz)
            if score < best_score:
                best_score = score
                best = (px, py, pz)
    return best


@dataclass
class HpcRunConfig:
    """Parameters of one traced run of an HPC application model.

    Attributes
    ----------
    num_ranks:
        MPI ranks (one per node in the paper's hybrid MPI+OpenMP setup).
    iterations:
        Number of time steps / solver iterations to trace.
    cells_per_rank:
        Per-rank problem size under weak scaling; under strong scaling the
        *global* problem is ``cells_per_rank * strong_scaling_base_ranks``
        cells and is divided by ``num_ranks``.
    scaling:
        ``"weak"`` or ``"strong"``.
    strong_scaling_base_ranks:
        Rank count at which the strong-scaling problem fits ``cells_per_rank``
        per rank.
    ns_per_cell:
        Computation cost per cell per step.
    seed:
        Seed for the small log-normal computation jitter.
    """

    num_ranks: int
    iterations: int = 10
    cells_per_rank: int = 64_000
    scaling: str = "weak"
    strong_scaling_base_ranks: int = 8
    ns_per_cell: float = _DEFAULT_NS_PER_CELL
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_ranks <= 0 or self.iterations <= 0 or self.cells_per_rank <= 0:
            raise ValueError("num_ranks, iterations and cells_per_rank must be positive")
        if self.scaling not in ("weak", "strong"):
            raise ValueError("scaling must be 'weak' or 'strong'")
        if self.strong_scaling_base_ranks <= 0:
            raise ValueError("strong_scaling_base_ranks must be positive")

    def effective_cells_per_rank(self) -> int:
        """Cells per rank after applying the scaling mode."""
        if self.scaling == "weak":
            return self.cells_per_rank
        total = self.cells_per_rank * self.strong_scaling_base_ranks
        return max(1, total // self.num_ranks)


class HpcApplicationModel:
    """Base class of all HPC application skeletons."""

    name = "hpc-app"
    #: multiplier on the per-cell compute cost (distinguishes compute-heavy
    #: apps like CloverLeaf from communication-heavy ones like OpenMX)
    compute_factor = 1.0

    def trace(self, config: HpcRunConfig) -> MpiTrace:
        """Run the skeleton and return its liballprof-style trace."""
        tracer = MpiTracer(config.num_ranks, name=f"{self.name}-{config.num_ranks}")
        rng = np.random.default_rng(config.seed)
        self._run(tracer, config, rng)
        return tracer.finish()

    # -- helpers shared by the skeletons ---------------------------------------
    def _compute_all(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator, base_ns: float) -> None:
        """Charge ``base_ns`` (with ~2% log-normal jitter) of compute on every rank."""
        jitter = rng.lognormal(mean=0.0, sigma=0.02, size=tracer.num_ranks)
        for rank in range(tracer.num_ranks):
            tracer.compute(rank, int(base_ns * self.compute_factor * jitter[rank]))

    def _halo_exchange_2d(self, tracer: MpiTracer, grid: Tuple[int, int], halo_bytes: int, tag: int) -> None:
        """Sendrecv with the 4 neighbours of a periodic 2-D grid."""
        px, py = grid
        for rank in range(px * py):
            x, y = rank % px, rank // px
            # deadlock-free shift pattern: each call sends towards +d while
            # receiving from -d (and vice versa), as real halo codes do
            shifts = [
                (((x + 1) % px) + y * px, ((x - 1) % px) + y * px),
                (((x - 1) % px) + y * px, ((x + 1) % px) + y * px),
                (x + ((y + 1) % py) * px, x + ((y - 1) % py) * px),
                (x + ((y - 1) % py) * px, x + ((y + 1) % py) * px),
            ]
            for send_peer, recv_peer in shifts:
                if send_peer == rank:
                    continue
                tracer.record(
                    rank,
                    "MPI_Sendrecv",
                    size=halo_bytes,
                    peer=send_peer,
                    recv_peer=recv_peer,
                    recv_size=halo_bytes,
                    tag=tag,
                )

    def _halo_exchange_3d(self, tracer: MpiTracer, grid: Tuple[int, int, int], halo_bytes: int, tag: int) -> None:
        """Sendrecv with the 6 face neighbours of a periodic 3-D grid."""
        px, py, pz = grid
        for rank in range(px * py * pz):
            x = rank % px
            y = (rank // px) % py
            z = rank // (px * py)
            plus = [
                ((x + 1) % px) + y * px + z * px * py,
                x + ((y + 1) % py) * px + z * px * py,
                x + y * px + ((z + 1) % pz) * px * py,
            ]
            minus = [
                ((x - 1) % px) + y * px + z * px * py,
                x + ((y - 1) % py) * px + z * px * py,
                x + y * px + ((z - 1) % pz) * px * py,
            ]
            # deadlock-free shift pattern per dimension: send +d / recv -d,
            # then send -d / recv +d
            shifts = []
            for p_, m_ in zip(plus, minus):
                shifts.append((p_, m_))
                shifts.append((m_, p_))
            for send_peer, recv_peer in shifts:
                if send_peer == rank:
                    continue
                tracer.record(
                    rank,
                    "MPI_Sendrecv",
                    size=halo_bytes,
                    peer=send_peer,
                    recv_peer=recv_peer,
                    recv_size=halo_bytes,
                    tag=tag,
                )

    def _allreduce_all(self, tracer: MpiTracer, size: int) -> None:
        for rank in range(tracer.num_ranks):
            tracer.record(rank, "MPI_Allreduce", size=size)

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        raise NotImplementedError


class CloverLeaf(HpcApplicationModel):
    """2-D hydrodynamics: large compute, light 4-neighbour halos, one dt allreduce."""

    name = "cloverleaf"
    compute_factor = 2.0
    fields_per_exchange = 3

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        grid = factor_2d(config.num_ranks)
        cells = config.effective_cells_per_rank()
        side = max(1, int(math.sqrt(cells)))
        halo_bytes = side * 8  # one row of doubles
        for _ in range(config.iterations):
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell)
            for f in range(self.fields_per_exchange):
                self._halo_exchange_2d(tracer, grid, halo_bytes, tag=10 + 10 * f)
            self._allreduce_all(tracer, 8)  # dt reduction


class HPCG(HpcApplicationModel):
    """Conjugate gradient: halo exchange per SpMV, two dot-product allreduces."""

    name = "hpcg"
    compute_factor = 1.0
    mg_levels = 3

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        grid = factor_3d(config.num_ranks)
        cells = config.effective_cells_per_rank()
        face = max(1, int(round(cells ** (2.0 / 3.0))))
        halo_bytes = face * 8
        for _ in range(config.iterations):
            # SpMV + halo exchange
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell)
            self._halo_exchange_3d(tracer, grid, halo_bytes, tag=100)
            # two dot products
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell * 0.1)
            self._allreduce_all(tracer, 8)
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell * 0.1)
            self._allreduce_all(tracer, 8)
            # multigrid preconditioner: shrinking grids, shrinking halos
            for level in range(1, self.mg_levels + 1):
                level_cells = max(1, cells >> (3 * level))
                level_halo = max(64, halo_bytes >> (2 * level))
                self._compute_all(tracer, config, rng, level_cells * config.ns_per_cell)
                self._halo_exchange_3d(tracer, grid, level_halo, tag=100 + 10 * level)


class LULESH(HpcApplicationModel):
    """3-D shock hydrodynamics: face halos plus three scalar allreduces per step."""

    name = "lulesh"
    compute_factor = 1.8
    fields_per_exchange = 2

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        grid = factor_3d(config.num_ranks)
        cells = config.effective_cells_per_rank()
        face = max(1, int(round(cells ** (2.0 / 3.0))))
        halo_bytes = face * 8
        for _ in range(config.iterations):
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell)
            for f in range(self.fields_per_exchange):
                self._halo_exchange_3d(tracer, grid, halo_bytes, tag=200 + 10 * f)
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell * 0.4)
            for _ in range(3):
                self._allreduce_all(tracer, 8)


class LAMMPS(HpcApplicationModel):
    """Molecular dynamics: neighbour exchange per step, thermo allreduce periodically."""

    name = "lammps"
    compute_factor = 1.2
    thermo_every = 5

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        grid = factor_3d(config.num_ranks)
        atoms = config.effective_cells_per_rank()
        # boundary atoms ~ surface of the per-rank domain, 48 bytes per atom
        halo_bytes = max(64, int(round(atoms ** (2.0 / 3.0))) * 48)
        for step in range(config.iterations):
            self._compute_all(tracer, config, rng, atoms * config.ns_per_cell)
            self._halo_exchange_3d(tracer, grid, halo_bytes, tag=300)
            self._compute_all(tracer, config, rng, atoms * config.ns_per_cell * 0.3)
            if step % self.thermo_every == 0:
                self._allreduce_all(tracer, 48)


class ICON(HpcApplicationModel):
    """Climate model: 2-D halos, frequent small allreduces, periodic gather (output)."""

    name = "icon"
    compute_factor = 0.9
    output_every = 4

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        grid = factor_2d(config.num_ranks)
        cells = config.effective_cells_per_rank()
        side = max(1, int(math.sqrt(cells)))
        halo_bytes = side * 8 * 4  # several prognostic fields
        for step in range(config.iterations):
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell)
            self._halo_exchange_2d(tracer, grid, halo_bytes, tag=400)
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell * 0.2)
            for _ in range(2):
                self._allreduce_all(tracer, 8)
            if step % self.output_every == 0:
                gather_bytes = max(64, cells // 16)
                for rank in range(tracer.num_ranks):
                    tracer.record(rank, "MPI_Gather", size=gather_bytes, root=0)


class OpenMX(HpcApplicationModel):
    """DFT: collective-dominated (alltoall + large allreduces per SCF iteration)."""

    name = "openmx"
    compute_factor = 1.5

    def _run(self, tracer: MpiTracer, config: HpcRunConfig, rng: np.random.Generator) -> None:
        cells = config.effective_cells_per_rank()
        alltoall_per_pair = max(256, (cells * 8) // max(1, config.num_ranks))
        allreduce_bytes = max(1024, cells // 4)
        for _ in range(config.iterations):
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell)
            for rank in range(tracer.num_ranks):
                tracer.record(rank, "MPI_Alltoall", size=alltoall_per_pair)
            self._compute_all(tracer, config, rng, cells * config.ns_per_cell * 0.5)
            self._allreduce_all(tracer, allreduce_bytes)
            self._allreduce_all(tracer, 8)


#: Registry used by benchmarks and the CLI.
HPC_APPLICATIONS: Dict[str, HpcApplicationModel] = {
    app.name: app
    for app in (CloverLeaf(), HPCG(), LULESH(), LAMMPS(), ICON(), OpenMX())
}

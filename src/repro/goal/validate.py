"""Structural validation of GOAL schedules.

The scheduler assumes several invariants of its input; this module checks
them explicitly so that hand-written or externally parsed schedules fail
early with actionable errors instead of deadlocking a simulation:

* every dependency references an in-range, *earlier* vertex (acyclicity),
* every send/recv peer is a valid rank and not the sending rank itself,
* message matching is consistent: for every ``(src, dst, tag)`` triple the
  total number of sends equals the total number of receives and the byte
  multiset matches (otherwise the simulation would deadlock waiting for a
  message that never arrives),
* op sizes and stream ids are non-negative.
"""
from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.goal.ops import OpType
from repro.goal.schedule import GoalSchedule


class GoalValidationError(ValueError):
    """Raised by :func:`validate_schedule` when an invariant is violated.

    The exception message lists every problem found (up to ``max_errors``),
    one per line, so users can fix a broken generator in one pass.
    """

    def __init__(self, errors: List[str]) -> None:
        self.errors = list(errors)
        super().__init__("\n".join(self.errors))


def validate_schedule(
    schedule: GoalSchedule,
    check_matching: bool = True,
    max_errors: int = 50,
) -> None:
    """Validate ``schedule``; raise :class:`GoalValidationError` on problems.

    Parameters
    ----------
    schedule:
        The GOAL program to check.
    check_matching:
        Also verify send/recv matching across ranks.  This is O(total ops)
        but can be skipped for partially constructed schedules.
    max_errors:
        Stop collecting after this many problems.
    """
    errors: List[str] = []

    def report(msg: str) -> bool:
        errors.append(msg)
        return len(errors) >= max_errors

    num_ranks = schedule.num_ranks
    for rank in schedule.ranks:
        n = len(rank.ops)
        for vertex, deps in enumerate(rank.preds):
            for dep in deps:
                if dep < 0 or dep >= n:
                    if report(f"rank {rank.rank}: vertex {vertex} depends on out-of-range vertex {dep}"):
                        raise GoalValidationError(errors)
                elif dep >= vertex:
                    if report(
                        f"rank {rank.rank}: vertex {vertex} depends on later/equal vertex {dep} "
                        "(forward edge; schedule is not in definition order)"
                    ):
                        raise GoalValidationError(errors)
        for vertex, op in enumerate(rank.ops):
            if op.size < 0:
                if report(f"rank {rank.rank}: vertex {vertex} has negative size {op.size}"):
                    raise GoalValidationError(errors)
            if op.cpu < 0:
                if report(f"rank {rank.rank}: vertex {vertex} has negative cpu {op.cpu}"):
                    raise GoalValidationError(errors)
            if op.is_comm:
                if op.peer is None or not (0 <= op.peer < num_ranks):
                    if report(
                        f"rank {rank.rank}: vertex {vertex} ({op.kind.short()}) has invalid peer "
                        f"{op.peer} (num_ranks={num_ranks})"
                    ):
                        raise GoalValidationError(errors)
                elif op.peer == rank.rank:
                    if report(
                        f"rank {rank.rank}: vertex {vertex} ({op.kind.short()}) targets its own rank; "
                        "self-messages must be modelled as calc ops"
                    ):
                        raise GoalValidationError(errors)

    if check_matching and not errors:
        _check_message_matching(schedule, errors, max_errors)

    if errors:
        raise GoalValidationError(errors)


def _check_message_matching(schedule: GoalSchedule, errors: List[str], max_errors: int) -> None:
    """Verify that sends and receives pair up per (src, dst, tag) channel."""
    # channel -> Counter of message sizes (sends positive, recvs negative)
    send_sizes: Dict[Tuple[int, int, int], Counter] = defaultdict(Counter)
    recv_sizes: Dict[Tuple[int, int, int], Counter] = defaultdict(Counter)

    for rank in schedule.ranks:
        for op in rank.ops:
            if op.kind == OpType.SEND:
                send_sizes[(rank.rank, op.peer, op.tag)][op.size] += 1
            elif op.kind == OpType.RECV:
                recv_sizes[(op.peer, rank.rank, op.tag)][op.size] += 1

    channels = set(send_sizes) | set(recv_sizes)
    for channel in sorted(channels):
        src, dst, tag = channel
        sends = send_sizes.get(channel, Counter())
        recvs = recv_sizes.get(channel, Counter())
        if sends == recvs:
            continue
        n_send = sum(sends.values())
        n_recv = sum(recvs.values())
        if n_send != n_recv:
            errors.append(
                f"channel src={src} dst={dst} tag={tag}: {n_send} sends but {n_recv} recvs"
            )
        else:
            missing = sends - recvs
            extra = recvs - sends
            errors.append(
                f"channel src={src} dst={dst} tag={tag}: message sizes mismatch "
                f"(unmatched send sizes {dict(missing)}, unmatched recv sizes {dict(extra)})"
            )
        if len(errors) >= max_errors:
            return

"""Serialiser for the textual GOAL format.

Produces output that :func:`repro.goal.parser.parse_goal` round-trips exactly
(modulo label renaming: vertices without labels are assigned ``opN`` labels so
dependencies can be expressed).
"""
from __future__ import annotations

from typing import List

from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule, RankSchedule


def _op_line(op: Op, label: str) -> str:
    """Render one op as a textual GOAL line (without indentation)."""
    if op.kind == OpType.CALC:
        body = f"calc {op.size}"
    elif op.kind == OpType.SEND:
        body = f"send {op.size}b to {op.peer}"
        if op.tag:
            body += f" tag {op.tag}"
    else:
        body = f"recv {op.size}b from {op.peer}"
        if op.tag:
            body += f" tag {op.tag}"
    if op.cpu:
        body += f" cpu {op.cpu}"
    return f"{label}: {body}"


def _rank_labels(rank: RankSchedule) -> List[str]:
    """Assign a unique textual label to every vertex of ``rank``.

    Existing labels are kept when they do not collide with the generated
    ``opN`` namespace; otherwise vertices fall back to ``opN``.
    """
    used = set()
    labels: List[str] = []
    for idx, op in enumerate(rank.ops):
        label = op.label
        if not label or label in used:
            label = f"op{idx}"
        # guard against user labels that collide with generated ones
        while label in used:
            label = f"{label}_"
        used.add(label)
        labels.append(label)
    return labels


def write_goal(schedule: GoalSchedule) -> str:
    """Serialise ``schedule`` to the textual GOAL format and return the string."""
    lines: List[str] = [f"num_ranks {schedule.num_ranks}", ""]
    for rank in schedule.ranks:
        lines.append(f"rank {rank.rank} {{")
        labels = _rank_labels(rank)
        for idx, op in enumerate(rank.ops):
            lines.append("    " + _op_line(op, labels[idx]))
        for vertex, deps in enumerate(rank.preds):
            for dep in deps:
                lines.append(f"    {labels[vertex]} requires {labels[dep]}")
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


def write_goal_file(schedule: GoalSchedule, path: str) -> None:
    """Serialise ``schedule`` to a textual GOAL file at ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(write_goal(schedule))

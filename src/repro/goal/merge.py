"""Rank remapping and schedule fusion for multi-job / multi-tenant scenarios.

The paper (§3.2) models two scenarios on top of GOAL:

* **Multi-job**: distinct applications occupy *disjoint* sets of nodes and run
  concurrently.  This only requires remapping each application's ranks onto
  its allocated nodes and emitting one combined schedule
  (:func:`concatenate_schedules` with a placement).
* **Multi-tenancy**: several applications *share* nodes.  Their per-rank DAGs
  are fused into a single DAG per shared node, with each tenant's ops placed
  on distinct compute streams separated by dummy vertices so they can overlap
  (:func:`merge_onto_shared_nodes`).

On top of the rank-offset composition both merge entry points accept
*arrival offsets*: real clusters do not start every job at t=0, so each
application may carry an arrival time (ns).  :func:`delay_schedule` realises
an arrival inside the GOAL model itself — a single ``calc arrival`` root is
prepended to every non-empty rank and every former root is made to depend on
it, so no op of the job can issue before its arrival regardless of backend.
An arrival of zero is the identity (the schedule is reused untouched), which
keeps single-job co-tenant runs bit-identical to the plain simulation path.
"""
from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule, RankSchedule


def remap_ranks(
    schedule: GoalSchedule,
    mapping: Mapping[int, int],
    num_ranks: Optional[int] = None,
    name: Optional[str] = None,
) -> GoalSchedule:
    """Return a copy of ``schedule`` with every rank id translated via ``mapping``.

    Parameters
    ----------
    schedule:
        The source schedule (ranks ``0 .. schedule.num_ranks - 1``).
    mapping:
        Old rank -> new rank.  Must cover every source rank and be injective.
    num_ranks:
        Number of ranks in the output schedule; defaults to
        ``max(mapping.values()) + 1``.  Ranks not targeted by the mapping are
        left empty (no ops), which models idle nodes.
    name:
        Name of the resulting schedule.
    """
    src_ranks = range(schedule.num_ranks)
    missing = [r for r in src_ranks if r not in mapping]
    if missing:
        raise ValueError(f"mapping does not cover ranks {missing}")
    targets = [mapping[r] for r in src_ranks]
    if len(set(targets)) != len(targets):
        raise ValueError("mapping is not injective (two ranks map to the same node)")
    inferred = max(targets) + 1
    out_ranks = num_ranks if num_ranks is not None else inferred
    if inferred > out_ranks:
        raise ValueError(
            f"mapping targets rank {inferred - 1} but output num_ranks is {out_ranks}"
        )

    merged = GoalSchedule(out_ranks, name=name or schedule.name)
    for rank in schedule.ranks:
        new_rank = merged.ranks[mapping[rank.rank]]
        for idx, op in enumerate(rank.ops):
            new_op = op.copy()
            new_op.label = None
            if new_op.is_comm:
                new_op.peer = mapping[op.peer]
            new_rank.add_op(new_op, rank.preds[idx])
    return merged


def relabel_tags(schedule: GoalSchedule, tag_offset: int) -> GoalSchedule:
    """Return a copy of ``schedule`` with ``tag_offset`` added to every message tag.

    Used before fusing multiple applications so their messages cannot be
    cross-matched even when they share (src, dst) pairs.
    """
    if tag_offset < 0:
        raise ValueError("tag_offset must be non-negative")
    out = schedule.copy()
    for rank in out.ranks:
        for op in rank.ops:
            if op.is_comm:
                op.tag += tag_offset
    return out


def delay_schedule(schedule: GoalSchedule, delay_ns: int) -> GoalSchedule:
    """Return a copy of ``schedule`` whose every op starts at least ``delay_ns`` late.

    Models a job *arriving* at ``delay_ns``: each non-empty rank gets one
    ``calc delay_ns`` vertex prepended, and every former root is made to
    depend on it.  Since every vertex of a DAG transitively depends on some
    root, nothing of the job can issue before its arrival on any backend.

    ``delay_ns == 0`` returns ``schedule`` itself (identity — no extra
    vertices), so zero-arrival co-tenant composition stays bit-identical to
    the undelayed schedule.
    """
    if delay_ns < 0:
        raise ValueError(f"delay_ns must be non-negative, got {delay_ns}")
    if delay_ns == 0:
        return schedule
    out = GoalSchedule(schedule.num_ranks, name=schedule.name)
    for rank in schedule.ranks:
        new_rank = out.ranks[rank.rank]
        if not rank.ops:
            continue
        roots = set(rank.roots())
        new_rank.add_op(Op.calc(delay_ns))
        for idx, op in enumerate(rank.ops):
            # labels survive (only the unlabeled delay vertex is new); the
            # multi-job merges strip labels themselves when composing
            new_op = op.copy()
            # all original indices shift by one past the delay vertex
            deps = [d + 1 for d in rank.preds[idx]]
            if idx in roots:
                deps.append(0)
            new_rank.add_op(new_op, deps)
    return out


def _apply_arrivals(
    schedules: Sequence[GoalSchedule], arrivals: Optional[Sequence[int]]
) -> Sequence[GoalSchedule]:
    """Delay each schedule by its arrival offset (``None`` = all at t=0)."""
    if arrivals is None:
        return schedules
    if len(arrivals) != len(schedules):
        raise ValueError(
            f"need exactly one arrival per schedule "
            f"({len(arrivals)} arrivals for {len(schedules)} schedules)"
        )
    return [delay_schedule(sched, arr) for sched, arr in zip(schedules, arrivals)]


def concatenate_schedules(
    schedules: Sequence[GoalSchedule],
    placements: Optional[Sequence[Mapping[int, int]]] = None,
    num_ranks: Optional[int] = None,
    name: str = "multi-job",
    tag_stride: int = 1 << 20,
    arrivals: Optional[Sequence[int]] = None,
) -> GoalSchedule:
    """Combine several applications into one multi-job schedule.

    Each application keeps its own (disjoint) set of nodes.

    Parameters
    ----------
    schedules:
        The applications to combine.
    placements:
        One mapping per application assigning its ranks to global node ids.
        When omitted, applications are packed back-to-back: application ``i``
        occupies the node range directly after application ``i - 1``.
    num_ranks:
        Total nodes in the combined schedule (inferred if omitted).
    name:
        Name of the combined schedule.
    tag_stride:
        Tag offset applied per application to keep their message spaces
        disjoint.  Must exceed the largest tag used by any application.
    arrivals:
        Optional arrival time (ns) per application; each is applied via
        :func:`delay_schedule` before merging.  Zero is the identity.
    """
    if not schedules:
        raise ValueError("need at least one schedule")
    schedules = _apply_arrivals(schedules, arrivals)
    if placements is None:
        placements = []
        base = 0
        for sched in schedules:
            placements.append({r: base + r for r in range(sched.num_ranks)})
            base += sched.num_ranks
    if len(placements) != len(schedules):
        raise ValueError("need exactly one placement per schedule")

    all_targets: List[int] = []
    for sched, placement in zip(schedules, placements):
        for r in range(sched.num_ranks):
            if r not in placement:
                raise ValueError(f"placement missing rank {r} of schedule {sched.name!r}")
            all_targets.append(placement[r])
    if len(set(all_targets)) != len(all_targets):
        raise ValueError("placements overlap: multi-job placement requires disjoint node sets")
    total = num_ranks if num_ranks is not None else max(all_targets) + 1

    merged = GoalSchedule(total, name=name)
    for job_idx, (sched, placement) in enumerate(zip(schedules, placements)):
        offset = job_idx * tag_stride
        for rank in sched.ranks:
            dst_rank = merged.ranks[placement[rank.rank]]
            if len(dst_rank.ops):
                raise ValueError(
                    f"node {placement[rank.rank]} already hosts another job; "
                    "use merge_onto_shared_nodes for multi-tenancy"
                )
            for idx, op in enumerate(rank.ops):
                new_op = op.copy()
                new_op.label = None
                if new_op.is_comm:
                    new_op.peer = placement[op.peer]
                    new_op.tag += offset
                dst_rank.add_op(new_op, rank.preds[idx])
    return merged


def merge_onto_shared_nodes(
    schedules: Sequence[GoalSchedule],
    placements: Sequence[Mapping[int, int]],
    num_ranks: Optional[int] = None,
    name: str = "multi-tenant",
    tag_stride: int = 1 << 20,
    stream_stride: int = 64,
    arrivals: Optional[Sequence[int]] = None,
) -> GoalSchedule:
    """Fuse several applications that may *share* nodes (multi-tenancy).

    Every tenant's DAG fragment placed on a node is appended to that node's
    combined DAG.  To let tenants overlap (they are independent programs), the
    fragments are kept independent — no artificial cross-tenant edges — and
    each tenant's ops are shifted onto a disjoint range of compute streams
    (``tenant_index * stream_stride``).  Message tags are offset per tenant so
    that matching stays within a tenant.

    Parameters
    ----------
    schedules, placements, num_ranks, name, tag_stride:
        As for :func:`concatenate_schedules`, except placements may overlap.
    stream_stride:
        Compute-stream offset between tenants on a shared node; must exceed
        the number of streams any single tenant uses on one rank.
    arrivals:
        Optional arrival time (ns) per tenant, applied via
        :func:`delay_schedule` before fusing.
    """
    if not schedules:
        raise ValueError("need at least one schedule")
    schedules = _apply_arrivals(schedules, arrivals)
    if len(placements) != len(schedules):
        raise ValueError("need exactly one placement per schedule")

    max_target = -1
    for sched, placement in zip(schedules, placements):
        for r in range(sched.num_ranks):
            if r not in placement:
                raise ValueError(f"placement missing rank {r} of schedule {sched.name!r}")
            max_target = max(max_target, placement[r])
    total = num_ranks if num_ranks is not None else max_target + 1

    merged = GoalSchedule(total, name=name)
    for tenant_idx, (sched, placement) in enumerate(zip(schedules, placements)):
        tag_offset = tenant_idx * tag_stride
        cpu_offset = tenant_idx * stream_stride
        for rank in sched.ranks:
            for op in rank.ops:
                if op.cpu >= stream_stride:
                    raise ValueError(
                        f"schedule {sched.name!r} uses compute stream {op.cpu} >= "
                        f"stream_stride {stream_stride}; increase stream_stride"
                    )
            dst_rank = merged.ranks[placement[rank.rank]]
            base = len(dst_rank.ops)
            for idx, op in enumerate(rank.ops):
                new_op = op.copy()
                new_op.label = None
                new_op.cpu = op.cpu + cpu_offset
                if new_op.is_comm:
                    new_op.peer = placement[op.peer]
                    new_op.tag += tag_offset
                dst_rank.add_op(new_op, [base + d for d in rank.preds[idx]])
    return merged

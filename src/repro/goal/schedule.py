"""Rank-level and program-level GOAL schedules.

A :class:`RankSchedule` is a dependency DAG over :class:`~repro.goal.ops.Op`
vertices for one rank (one network endpoint: an MPI rank, a node, or a GPU,
depending on the granularity chosen during GOAL generation).  A
:class:`GoalSchedule` is the ordered collection of rank schedules that makes
up a whole simulated program.

Vertices are addressed by their integer index within the rank (insertion
order); dependencies are stored as predecessor lists.  Successor lists and
in-degrees — the representation the scheduler actually consumes — are derived
lazily and cached.
"""
from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.goal.ops import Op, OpType


class RankSchedule:
    """Dependency DAG of GOAL ops for a single rank.

    Parameters
    ----------
    rank:
        The rank id this schedule belongs to.

    Notes
    -----
    The class maintains, per vertex ``i``:

    * ``ops[i]`` — the :class:`Op`,
    * ``preds[i]`` — sorted list of predecessor vertex indices
      (``i requires p`` for every ``p`` in ``preds[i]``).

    Successors and in-degrees are computed on demand by :meth:`successors`
    and :meth:`in_degrees` and invalidated by any mutation.
    """

    def __init__(self, rank: int) -> None:
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        self.rank = int(rank)
        self.ops: List[Op] = []
        self.preds: List[List[int]] = []
        self._succs: Optional[List[List[int]]] = None
        self._labels: Dict[str, int] = {}

    # -- construction ------------------------------------------------------
    def add_op(self, op: Op, requires: Iterable[int] = ()) -> int:
        """Append ``op`` and return its vertex index.

        ``requires`` lists vertex indices that must complete before ``op``
        may start.  Indices must refer to already-added vertices, which keeps
        the graph acyclic by construction.
        """
        idx = len(self.ops)
        deps: List[int] = []
        for dep in requires:
            dep = int(dep)
            if dep < 0 or dep >= idx:
                raise ValueError(
                    f"dependency {dep} of new vertex {idx} is out of range "
                    f"(must reference an earlier vertex)"
                )
            deps.append(dep)
        self.ops.append(op)
        self.preds.append(sorted(set(deps)))
        if op.label is not None:
            if op.label in self._labels:
                raise ValueError(f"duplicate label {op.label!r} in rank {self.rank}")
            self._labels[op.label] = idx
        self._succs = None
        return idx

    def add_dependency(self, vertex: int, requires: int) -> None:
        """Add an edge ``requires -> vertex`` after the fact.

        Only backward edges (``requires < vertex``) are allowed so the DAG
        stays acyclic by construction.
        """
        n = len(self.ops)
        if not (0 <= vertex < n) or not (0 <= requires < n):
            raise ValueError(f"vertex index out of range (n={n})")
        if requires == vertex:
            raise ValueError("a vertex cannot require itself")
        if requires > vertex:
            raise ValueError(
                f"dependency {requires} -> {vertex} would point forward; "
                "GOAL schedules only allow edges from earlier to later vertices"
            )
        if requires not in self.preds[vertex]:
            self.preds[vertex].append(requires)
            self.preds[vertex].sort()
            self._succs = None

    def vertex_by_label(self, label: str) -> int:
        """Return the vertex index for ``label``; raises ``KeyError`` if absent."""
        return self._labels[label]

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self.ops)

    def successors(self) -> List[List[int]]:
        """Return (cached) successor adjacency lists."""
        if self._succs is None:
            succs: List[List[int]] = [[] for _ in self.ops]
            for v, deps in enumerate(self.preds):
                for d in deps:
                    succs[d].append(v)
            self._succs = succs
        return self._succs

    def in_degrees(self) -> List[int]:
        """Return the in-degree (number of unmet dependencies) of each vertex."""
        return [len(deps) for deps in self.preds]

    def roots(self) -> List[int]:
        """Vertices with no dependencies (eligible to start at time zero)."""
        return [v for v, deps in enumerate(self.preds) if not deps]

    def leaves(self) -> List[int]:
        """Vertices with no successors."""
        succs = self.successors()
        return [v for v, s in enumerate(succs) if not s]

    def comm_ops(self) -> Iterator[Tuple[int, Op]]:
        """Iterate ``(vertex, op)`` over send/recv vertices."""
        for v, op in enumerate(self.ops):
            if op.is_comm:
                yield v, op

    def total_bytes_sent(self) -> int:
        """Sum of sizes over all send ops."""
        return sum(op.size for op in self.ops if op.is_send)

    def total_bytes_received(self) -> int:
        """Sum of sizes over all recv ops."""
        return sum(op.size for op in self.ops if op.is_recv)

    def total_calc_ns(self) -> int:
        """Sum of calc durations (nanoseconds)."""
        return sum(op.size for op in self.ops if op.is_calc)

    def compute_streams(self) -> List[int]:
        """Sorted list of distinct compute stream ids used by this rank."""
        return sorted({op.cpu for op in self.ops})

    def topological_order(self) -> List[int]:
        """Return vertices in a valid topological order.

        Because :meth:`add_op` only allows backward dependencies, insertion
        order is already topological; this is returned directly.
        """
        return list(range(len(self.ops)))

    def critical_path_ns(self) -> int:
        """Length (in ns of calc cost) of the longest calc-weighted path.

        Communication ops are treated as zero-cost; this is a lower bound on
        the rank's completion time used by analytic sanity checks and tests.
        """
        n = len(self.ops)
        dist = [0] * n
        for v in range(n):
            base = max((dist[p] for p in self.preds[v]), default=0)
            cost = self.ops[v].size if self.ops[v].is_calc else 0
            dist[v] = base + cost
        return max(dist, default=0)

    def copy(self) -> "RankSchedule":
        """Deep-copy this rank schedule (ops are copied; labels preserved)."""
        new = RankSchedule(self.rank)
        new.ops = [op.copy() for op in self.ops]
        new.preds = [list(p) for p in self.preds]
        new._labels = dict(self._labels)
        return new

    def __repr__(self) -> str:
        return f"RankSchedule(rank={self.rank}, ops={len(self.ops)})"


class GoalSchedule:
    """A complete GOAL program: one :class:`RankSchedule` per rank.

    Parameters
    ----------
    num_ranks:
        Number of ranks.  Rank ids are ``0 .. num_ranks - 1``.
    name:
        Optional human-readable name (propagated to trace files and reports).
    """

    def __init__(self, num_ranks: int, name: str = "goal") -> None:
        if num_ranks <= 0:
            raise ValueError(f"num_ranks must be positive, got {num_ranks}")
        self.name = name
        self.ranks: List[RankSchedule] = [RankSchedule(r) for r in range(num_ranks)]

    # -- accessors ----------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return len(self.ranks)

    def __getitem__(self, rank: int) -> RankSchedule:
        return self.ranks[rank]

    def __iter__(self) -> Iterator[RankSchedule]:
        return iter(self.ranks)

    def __len__(self) -> int:
        return len(self.ranks)

    # -- statistics -----------------------------------------------------------
    def num_ops(self) -> int:
        """Total number of vertices across all ranks."""
        return sum(len(r) for r in self.ranks)

    def num_edges(self) -> int:
        """Total number of dependency edges across all ranks."""
        return sum(len(deps) for r in self.ranks for deps in r.preds)

    def total_bytes(self) -> int:
        """Total bytes sent across all ranks."""
        return sum(r.total_bytes_sent() for r in self.ranks)

    def total_calc_ns(self) -> int:
        """Total computation time (ns) across all ranks."""
        return sum(r.total_calc_ns() for r in self.ranks)

    def op_counts(self) -> Dict[str, int]:
        """Return ``{"send": n, "recv": n, "calc": n}`` counts."""
        counts = {"send": 0, "recv": 0, "calc": 0}
        for r in self.ranks:
            for op in r.ops:
                counts[op.kind.short()] += 1
        return counts

    def summary(self) -> Dict[str, object]:
        """Return a dictionary of headline statistics for reports."""
        counts = self.op_counts()
        return {
            "name": self.name,
            "num_ranks": self.num_ranks,
            "num_ops": self.num_ops(),
            "num_edges": self.num_edges(),
            "sends": counts["send"],
            "recvs": counts["recv"],
            "calcs": counts["calc"],
            "total_bytes": self.total_bytes(),
            "total_calc_ns": self.total_calc_ns(),
        }

    def copy(self) -> "GoalSchedule":
        """Deep-copy the whole schedule."""
        new = GoalSchedule(self.num_ranks, name=self.name)
        new.ranks = [r.copy() for r in self.ranks]
        return new

    def __repr__(self) -> str:
        return (
            f"GoalSchedule(name={self.name!r}, ranks={self.num_ranks}, "
            f"ops={self.num_ops()})"
        )

"""GOAL (Group Operation Assembly Language) intermediate representation.

GOAL is the unified trace format at the heart of the ATLAHS toolchain.  Every
application trace — MPI, NCCL, or block-I/O — is converted into a GOAL
schedule: one dependency DAG per rank whose vertices are ``send``, ``recv``
and ``calc`` tasks and whose edges are ``requires`` relations.  The GOAL
scheduler (:mod:`repro.scheduler`) then replays these DAGs on any network
backend.

Public surface
--------------
:class:`~repro.goal.ops.Op`, :class:`~repro.goal.ops.OpType`
    Single task (vertex) and its kind.
:class:`~repro.goal.schedule.RankSchedule`, :class:`~repro.goal.schedule.GoalSchedule`
    Per-rank DAG and the whole-program collection of rank DAGs.
:class:`~repro.goal.builder.GoalBuilder`, :class:`~repro.goal.builder.RankBuilder`
    Programmatic construction API used by all schedule generators.
:func:`~repro.goal.parser.parse_goal` / :func:`~repro.goal.writer.write_goal`
    Textual GOAL format (the human-readable format shown in the paper's Fig. 3).
:func:`~repro.goal.binary.encode_goal` / :func:`~repro.goal.binary.decode_goal`
    Compact binary format used for storage/execution efficiency.
:func:`~repro.goal.validate.validate_schedule`
    Structural validation (acyclicity, matching sends/recvs, bounds).
:mod:`~repro.goal.merge`
    Rank remapping and DAG fusion for multi-job / multi-tenant scenarios.
"""
from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule, RankSchedule
from repro.goal.builder import GoalBuilder, RankBuilder
from repro.goal.parser import parse_goal, parse_goal_file, GoalParseError
from repro.goal.writer import write_goal, write_goal_file
from repro.goal.binary import encode_goal, decode_goal, write_goal_binary, read_goal_binary
from repro.goal.validate import validate_schedule, GoalValidationError
from repro.goal.merge import (
    remap_ranks,
    concatenate_schedules,
    merge_onto_shared_nodes,
    relabel_tags,
    delay_schedule,
)

__all__ = [
    "Op",
    "OpType",
    "GoalSchedule",
    "RankSchedule",
    "GoalBuilder",
    "RankBuilder",
    "parse_goal",
    "parse_goal_file",
    "GoalParseError",
    "write_goal",
    "write_goal_file",
    "encode_goal",
    "decode_goal",
    "write_goal_binary",
    "read_goal_binary",
    "validate_schedule",
    "GoalValidationError",
    "remap_ranks",
    "concatenate_schedules",
    "merge_onto_shared_nodes",
    "relabel_tags",
    "delay_schedule",
]

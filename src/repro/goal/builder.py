"""Fluent construction API for GOAL schedules.

All schedule generators in the toolchain (:mod:`repro.schedgen`) build their
output through :class:`GoalBuilder` rather than poking at
:class:`~repro.goal.schedule.RankSchedule` internals.  The builder returns
opaque vertex handles from every ``send`` / ``recv`` / ``calc`` call which are
then wired together with :meth:`RankBuilder.requires`.

Example
-------
>>> from repro.goal import GoalBuilder
>>> b = GoalBuilder(num_ranks=2, name="pingpong")
>>> r0, r1 = b.rank(0), b.rank(1)
>>> c = r0.calc(100)
>>> s = r0.send(8, dst=1, tag=7); r0.requires(s, c)
>>> r1.recv(8, src=0, tag=7)
2
>>> sched = b.build()
>>> sched.num_ops()
4
"""
from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule, RankSchedule

VertexHandle = int


class RankBuilder:
    """Builder for a single rank's DAG.  Obtained from :meth:`GoalBuilder.rank`."""

    def __init__(self, schedule: RankSchedule) -> None:
        self._sched = schedule

    @property
    def rank(self) -> int:
        return self._sched.rank

    def __len__(self) -> int:
        return len(self._sched)

    # -- op insertion --------------------------------------------------------
    def send(
        self,
        size: int,
        dst: int,
        tag: int = 0,
        cpu: int = 0,
        requires: Iterable[VertexHandle] = (),
        label: Optional[str] = None,
    ) -> VertexHandle:
        """Add a ``send`` of ``size`` bytes to rank ``dst``; return its handle."""
        return self._sched.add_op(Op.send(size, dst, tag=tag, cpu=cpu, label=label), requires)

    def recv(
        self,
        size: int,
        src: int,
        tag: int = 0,
        cpu: int = 0,
        requires: Iterable[VertexHandle] = (),
        label: Optional[str] = None,
    ) -> VertexHandle:
        """Add a ``recv`` of ``size`` bytes from rank ``src``; return its handle."""
        return self._sched.add_op(Op.recv(size, src, tag=tag, cpu=cpu, label=label), requires)

    def calc(
        self,
        duration_ns: int,
        cpu: int = 0,
        requires: Iterable[VertexHandle] = (),
        label: Optional[str] = None,
    ) -> VertexHandle:
        """Add a ``calc`` of ``duration_ns`` nanoseconds; return its handle."""
        return self._sched.add_op(Op.calc(duration_ns, cpu=cpu, label=label), requires)

    def dummy(
        self,
        cpu: int = 0,
        requires: Iterable[VertexHandle] = (),
        label: Optional[str] = None,
    ) -> VertexHandle:
        """Add a zero-cost synchronisation vertex; return its handle."""
        return self._sched.add_op(Op.dummy(cpu=cpu, label=label), requires)

    def add(self, op: Op, requires: Iterable[VertexHandle] = ()) -> VertexHandle:
        """Add an arbitrary pre-constructed :class:`Op`."""
        return self._sched.add_op(op, requires)

    # -- dependency wiring -----------------------------------------------------
    def requires(self, vertex: VertexHandle, *deps: Union[VertexHandle, Iterable[VertexHandle]]) -> None:
        """Declare that ``vertex`` requires every vertex in ``deps``.

        Each element of ``deps`` may be a single handle or an iterable of
        handles, so call sites can pass collected lists directly.
        """
        for dep in deps:
            if isinstance(dep, (list, tuple, set, frozenset)):
                for d in dep:
                    self._sched.add_dependency(vertex, d)
            else:
                self._sched.add_dependency(vertex, dep)

    def chain(self, vertices: Sequence[VertexHandle]) -> None:
        """Serialise ``vertices``: each one requires its predecessor in the list."""
        for prev, nxt in zip(vertices, vertices[1:]):
            self._sched.add_dependency(nxt, prev)

    def join(self, deps: Iterable[VertexHandle], cpu: int = 0, label: Optional[str] = None) -> VertexHandle:
        """Insert a dummy vertex depending on all of ``deps`` and return it.

        This is the "dummy node" construction used in Stages 2 and 4 of the
        NCCL pipeline and in multi-tenant merging to synchronise streams.
        """
        return self._sched.add_op(Op.dummy(cpu=cpu, label=label), deps)

    def fork(self, dep: VertexHandle, count: int, cpu: int = 0) -> List[VertexHandle]:
        """Insert ``count`` dummy vertices all depending on ``dep``."""
        return [self._sched.add_op(Op.dummy(cpu=cpu), (dep,)) for _ in range(count)]

    def last(self) -> Optional[VertexHandle]:
        """Handle of the most recently added vertex, or ``None`` if empty."""
        n = len(self._sched)
        return n - 1 if n else None


class GoalBuilder:
    """Builder for a whole GOAL program.

    Parameters
    ----------
    num_ranks:
        Number of ranks in the program.
    name:
        Schedule name propagated into the resulting :class:`GoalSchedule`.
    """

    def __init__(self, num_ranks: int, name: str = "goal") -> None:
        self._schedule = GoalSchedule(num_ranks, name=name)
        self._rank_builders = [RankBuilder(r) for r in self._schedule.ranks]

    @property
    def num_ranks(self) -> int:
        return self._schedule.num_ranks

    def rank(self, rank: int) -> RankBuilder:
        """Return the :class:`RankBuilder` for ``rank``."""
        return self._rank_builders[rank]

    def ranks(self) -> List[RankBuilder]:
        """Return builders for all ranks, in rank order."""
        return list(self._rank_builders)

    def build(self) -> GoalSchedule:
        """Return the constructed :class:`GoalSchedule`.

        The builder may continue to be used afterwards; the same underlying
        schedule object is returned each time.
        """
        return self._schedule

"""GOAL task (vertex) definitions.

A GOAL schedule is a DAG per rank.  Each vertex is an :class:`Op` of one of
three kinds (paper §2.1):

``send``
    Transmit ``size`` bytes to rank ``peer`` with message ``tag``.
``recv``
    Receive ``size`` bytes from rank ``peer`` with message ``tag``.
``calc``
    Local computation costing ``size`` nanoseconds (the unit follows
    LogGOPSim: calc arguments are time, not bytes).

Each op may be pinned to a *compute stream* (``cpu``); ops on distinct
streams may overlap in time even within one rank, which is how GOAL models
concurrent CUDA streams or OpenMP sections.  Ops default to stream 0.
"""
from __future__ import annotations

import enum
from typing import Optional


class OpType(enum.IntEnum):
    """Kind of a GOAL task."""

    SEND = 0
    RECV = 1
    CALC = 2

    def short(self) -> str:
        """Return the lowercase keyword used in the textual GOAL format."""
        return _SHORT_NAMES[self]


_SHORT_NAMES = {OpType.SEND: "send", OpType.RECV: "recv", OpType.CALC: "calc"}


class Op:
    """A single GOAL task (a vertex of a rank's dependency DAG).

    Parameters
    ----------
    kind:
        One of :class:`OpType`.
    size:
        Bytes for ``send``/``recv``; nanoseconds of computation for ``calc``.
        Must be a non-negative integer.  A ``calc 0`` is a *dummy* vertex used
        purely to express synchronisation (e.g. joining CUDA streams).
    peer:
        Destination rank (for ``send``) or source rank (for ``recv``).
        ``None`` for ``calc``.
    tag:
        Message tag used to match sends with receives.  Defaults to 0.
    cpu:
        Compute-stream index this op executes on.  Defaults to 0.
    label:
        Optional human-readable label (the ``lN`` names in textual GOAL).

    Notes
    -----
    ``Op`` is deliberately a ``__slots__`` class: large AI traces contain
    millions of vertices, and per-instance ``__dict__``s would roughly triple
    memory usage.
    """

    __slots__ = ("kind", "size", "peer", "tag", "cpu", "label")

    def __init__(
        self,
        kind: OpType,
        size: int,
        peer: Optional[int] = None,
        tag: int = 0,
        cpu: int = 0,
        label: Optional[str] = None,
    ) -> None:
        if size < 0:
            raise ValueError(f"op size must be non-negative, got {size}")
        if kind in (OpType.SEND, OpType.RECV):
            if peer is None:
                raise ValueError(f"{kind.short()} requires a peer rank")
            if peer < 0:
                raise ValueError(f"peer rank must be non-negative, got {peer}")
        elif peer is not None:
            raise ValueError("calc ops must not specify a peer")
        if tag < 0:
            raise ValueError(f"tag must be non-negative, got {tag}")
        if cpu < 0:
            raise ValueError(f"cpu (compute stream) must be non-negative, got {cpu}")
        self.kind = kind
        self.size = int(size)
        self.peer = None if peer is None else int(peer)
        self.tag = int(tag)
        self.cpu = int(cpu)
        self.label = label

    # -- constructors -----------------------------------------------------
    @classmethod
    def send(cls, size: int, dst: int, tag: int = 0, cpu: int = 0, label: Optional[str] = None) -> "Op":
        """Create a ``send`` op of ``size`` bytes to rank ``dst``."""
        return cls(OpType.SEND, size, peer=dst, tag=tag, cpu=cpu, label=label)

    @classmethod
    def recv(cls, size: int, src: int, tag: int = 0, cpu: int = 0, label: Optional[str] = None) -> "Op":
        """Create a ``recv`` op of ``size`` bytes from rank ``src``."""
        return cls(OpType.RECV, size, peer=src, tag=tag, cpu=cpu, label=label)

    @classmethod
    def calc(cls, duration_ns: int, cpu: int = 0, label: Optional[str] = None) -> "Op":
        """Create a ``calc`` op costing ``duration_ns`` nanoseconds."""
        return cls(OpType.CALC, duration_ns, peer=None, cpu=cpu, label=label)

    @classmethod
    def dummy(cls, cpu: int = 0, label: Optional[str] = None) -> "Op":
        """Create a zero-cost synchronisation vertex (``calc 0``)."""
        return cls(OpType.CALC, 0, peer=None, cpu=cpu, label=label)

    # -- predicates --------------------------------------------------------
    @property
    def is_send(self) -> bool:
        return self.kind == OpType.SEND

    @property
    def is_recv(self) -> bool:
        return self.kind == OpType.RECV

    @property
    def is_calc(self) -> bool:
        return self.kind == OpType.CALC

    @property
    def is_comm(self) -> bool:
        """True for sends and receives (network-visible ops)."""
        return self.kind != OpType.CALC

    @property
    def is_dummy(self) -> bool:
        """True for zero-cost calcs used only for synchronisation."""
        return self.kind == OpType.CALC and self.size == 0

    # -- dunder ------------------------------------------------------------
    def __repr__(self) -> str:
        if self.kind == OpType.CALC:
            core = f"calc {self.size}"
        elif self.kind == OpType.SEND:
            core = f"send {self.size}b to {self.peer} tag {self.tag}"
        else:
            core = f"recv {self.size}b from {self.peer} tag {self.tag}"
        extra = f" cpu {self.cpu}" if self.cpu else ""
        lbl = f"{self.label}: " if self.label else ""
        return f"Op({lbl}{core}{extra})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Op):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.size == other.size
            and self.peer == other.peer
            and self.tag == other.tag
            and self.cpu == other.cpu
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.size, self.peer, self.tag, self.cpu))

    def copy(self) -> "Op":
        """Return a shallow copy of this op."""
        op = Op.__new__(Op)
        op.kind = self.kind
        op.size = self.size
        op.peer = self.peer
        op.tag = self.tag
        op.cpu = self.cpu
        op.label = self.label
        return op

"""Parser for the textual GOAL format.

The textual format follows the paper's Fig. 3 and the LogGOPSim GOAL
language.  A file consists of an optional header followed by one block per
rank::

    num_ranks 2

    rank 0 {
        l1: calc 100
        l2: calc 200 cpu 0
        l3: calc 200 cpu 1
        l2 requires l1
        l3 requires l1
        l4: send 10b to 1 tag 42
        l4 requires l2
        l4 requires l3
    }

    rank 1 {
        l1: recv 10b from 0 tag 42
    }

Rules
-----
* ``num_ranks N`` may appear once before the first rank block; if absent the
  number of ranks is inferred as ``max(rank id) + 1``.
* Sizes may carry a ``b`` suffix (bytes) for sends/receives; calc takes a bare
  integer (nanoseconds).
* ``cpu K`` optionally pins an op to compute stream ``K`` (``cpuK`` is also
  accepted, matching LogGOPSim's historical syntax).
* ``X requires Y`` adds a dependency edge Y -> X.  Both labels must already be
  defined in the current rank block.
* ``#`` and ``//`` start comments; blank lines are ignored.
"""
from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.goal.ops import Op
from repro.goal.schedule import GoalSchedule, RankSchedule


class GoalParseError(ValueError):
    """Raised when textual GOAL input is malformed.

    Attributes
    ----------
    line_no:
        1-based line number at which the error occurred (``None`` when the
        error is not attributable to a single line).
    """

    def __init__(self, message: str, line_no: Optional[int] = None) -> None:
        self.line_no = line_no
        prefix = f"line {line_no}: " if line_no is not None else ""
        super().__init__(prefix + message)


_COMMENT_RE = re.compile(r"(#|//).*$")
_NUM_RANKS_RE = re.compile(r"^num_ranks\s+(\d+)$")
_RANK_OPEN_RE = re.compile(r"^rank\s+(\d+)\s*\{$")
_LABELLED_OP_RE = re.compile(r"^(?P<label>[A-Za-z_][\w.-]*)\s*:\s*(?P<body>.+)$")
_REQUIRES_RE = re.compile(r"^(?P<succ>[A-Za-z_][\w.-]*)\s+(requires|irequires)\s+(?P<pred>[A-Za-z_][\w.-]*)$")
_SEND_RE = re.compile(
    r"^send\s+(?P<size>\d+)\s*b?\s+to\s+(?P<peer>\d+)"
    r"(?:\s+tag\s+(?P<tag>\d+))?(?:\s+cpu\s*(?P<cpu>\d+))?$"
)
_RECV_RE = re.compile(
    r"^recv\s+(?P<size>\d+)\s*b?\s+from\s+(?P<peer>\d+)"
    r"(?:\s+tag\s+(?P<tag>\d+))?(?:\s+cpu\s*(?P<cpu>\d+))?$"
)
_CALC_RE = re.compile(r"^calc\s+(?P<size>\d+)(?:\s+cpu\s*(?P<cpu>\d+))?$")


def _parse_op_body(body: str, label: Optional[str], line_no: int) -> Op:
    """Parse the part of an op line after the ``label:`` prefix."""
    body = body.strip()
    m = _SEND_RE.match(body)
    if m:
        return Op.send(
            int(m.group("size")),
            dst=int(m.group("peer")),
            tag=int(m.group("tag") or 0),
            cpu=int(m.group("cpu") or 0),
            label=label,
        )
    m = _RECV_RE.match(body)
    if m:
        return Op.recv(
            int(m.group("size")),
            src=int(m.group("peer")),
            tag=int(m.group("tag") or 0),
            cpu=int(m.group("cpu") or 0),
            label=label,
        )
    m = _CALC_RE.match(body)
    if m:
        return Op.calc(int(m.group("size")), cpu=int(m.group("cpu") or 0), label=label)
    raise GoalParseError(f"unrecognised op syntax: {body!r}", line_no)


def parse_goal(text: str, name: str = "goal") -> GoalSchedule:
    """Parse textual GOAL ``text`` into a :class:`GoalSchedule`.

    Raises
    ------
    GoalParseError
        On any syntax or structural error (unknown labels, duplicate rank
        blocks, dependencies on not-yet-defined labels, ...).
    """
    declared_ranks: Optional[int] = None
    # rank id -> (list of (op, deps-as-labels), label->index map)
    blocks: Dict[int, RankSchedule] = {}
    pending_deps: List[Tuple[int, str, str, int]] = []  # (rank, succ_label, pred_label, line)

    current_rank: Optional[int] = None
    current_sched: Optional[RankSchedule] = None

    # Pre-split lines so that single-line rank blocks ("rank 0 { a: calc 1 }")
    # parse the same way as the multi-line form: braces end logical lines.
    logical_lines: List[Tuple[int, str]] = []
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = _COMMENT_RE.sub("", raw)
        for part in stripped.replace("{", "{\n").replace("}", "\n}\n").split("\n"):
            part = part.strip()
            if part:
                logical_lines.append((line_no, part))

    for line_no, line in logical_lines:
        if current_rank is None:
            m = _NUM_RANKS_RE.match(line)
            if m:
                if declared_ranks is not None:
                    raise GoalParseError("num_ranks declared more than once", line_no)
                declared_ranks = int(m.group(1))
                if declared_ranks <= 0:
                    raise GoalParseError("num_ranks must be positive", line_no)
                continue
            m = _RANK_OPEN_RE.match(line)
            if m:
                rank = int(m.group(1))
                if rank in blocks:
                    raise GoalParseError(f"duplicate block for rank {rank}", line_no)
                current_rank = rank
                current_sched = RankSchedule(rank)
                blocks[rank] = current_sched
                continue
            raise GoalParseError(f"expected 'num_ranks' or 'rank N {{', got {line!r}", line_no)

        # inside a rank block
        if line == "}":
            current_rank = None
            current_sched = None
            continue

        m = _REQUIRES_RE.match(line)
        if m:
            pending_deps.append((current_rank, m.group("succ"), m.group("pred"), line_no))
            continue

        m = _LABELLED_OP_RE.match(line)
        if m:
            op = _parse_op_body(m.group("body"), m.group("label"), line_no)
            try:
                current_sched.add_op(op)
            except ValueError as exc:
                raise GoalParseError(str(exc), line_no) from exc
            continue

        # unlabelled op (allowed; cannot be referenced by requires)
        op = _parse_op_body(line, None, line_no)
        current_sched.add_op(op)

    if current_rank is not None:
        raise GoalParseError(f"rank {current_rank} block not closed (missing '}}')")

    if not blocks:
        raise GoalParseError("no rank blocks found")

    max_rank = max(blocks)
    num_ranks = declared_ranks if declared_ranks is not None else max_rank + 1
    if max_rank >= num_ranks:
        raise GoalParseError(
            f"rank {max_rank} defined but num_ranks is {num_ranks}"
        )

    # resolve label-based dependencies
    for rank, succ_label, pred_label, line_no in pending_deps:
        sched = blocks[rank]
        try:
            succ = sched.vertex_by_label(succ_label)
        except KeyError:
            raise GoalParseError(f"unknown label {succ_label!r} in rank {rank}", line_no)
        try:
            pred = sched.vertex_by_label(pred_label)
        except KeyError:
            raise GoalParseError(f"unknown label {pred_label!r} in rank {rank}", line_no)
        if pred >= succ:
            raise GoalParseError(
                f"dependency {succ_label} requires {pred_label} points forward "
                f"(vertex {pred} >= {succ}); GOAL requires definition before use",
                line_no,
            )
        sched.add_dependency(succ, pred)

    schedule = GoalSchedule(num_ranks, name=name)
    for rank, sched in blocks.items():
        schedule.ranks[rank] = sched
    return schedule


def parse_goal_file(path: str, name: Optional[str] = None) -> GoalSchedule:
    """Parse a textual GOAL file from ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    return parse_goal(text, name=name or path)

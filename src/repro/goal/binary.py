"""Compact binary GOAL codec.

The paper stores and executes GOAL schedules in "a compact binary format" for
storage and execution efficiency (§2.1), and Table 1 / Fig. 9 compare trace
sizes in this format against Chakra.  This module implements that format.

Layout
------
::

    magic   : 4 bytes  b"GOAL"
    version : 1 byte   (currently 2)
    name    : varint length + UTF-8 bytes
    ranks   : varint num_ranks
    per rank:
        varint num_ops
        per op:
            1 byte  header:  bits 0-1 kind, bit 2 has-tag, bit 3 has-cpu,
                             bit 4 has-deps
            varint  size
            varint  peer          (send/recv only)
            varint  tag           (only if has-tag)
            varint  cpu           (only if has-cpu)
            varint  dep count + varint backward deltas (only if has-deps)

All integers use unsigned LEB128 varints; dependency targets are encoded as
``vertex_index - dep_index`` (always >= 1), which keeps most deltas in a
single byte because dependencies are overwhelmingly local.

Labels are intentionally *not* stored — they are a debugging aid of the
textual format only — which is one reason GOAL binaries stay much smaller
than Chakra traces.
"""
from __future__ import annotations

import io
from typing import BinaryIO, List

from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule, RankSchedule

MAGIC = b"GOAL"
VERSION = 2

_KIND_MASK = 0x03
_FLAG_TAG = 0x04
_FLAG_CPU = 0x08
_FLAG_DEPS = 0x10


class GoalBinaryError(ValueError):
    """Raised when a binary GOAL blob is malformed or truncated."""


# ---------------------------------------------------------------------------
# varint primitives
# ---------------------------------------------------------------------------
def _write_varint(buf: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint to ``buf``."""
    if value < 0:
        raise ValueError("varints must be non-negative")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def _read_varint(data: bytes, pos: int) -> tuple:
    """Read an unsigned LEB128 varint from ``data`` at ``pos``.

    Returns ``(value, new_pos)``.
    """
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise GoalBinaryError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 63:
            raise GoalBinaryError("varint too long")


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------
def encode_goal(schedule: GoalSchedule) -> bytes:
    """Encode ``schedule`` into the compact binary format and return the bytes."""
    buf = bytearray()
    buf += MAGIC
    buf.append(VERSION)
    name_bytes = schedule.name.encode("utf-8")
    _write_varint(buf, len(name_bytes))
    buf += name_bytes
    _write_varint(buf, schedule.num_ranks)
    for rank in schedule.ranks:
        _encode_rank(buf, rank)
    return bytes(buf)


def _encode_rank(buf: bytearray, rank: RankSchedule) -> None:
    _write_varint(buf, len(rank.ops))
    for idx, op in enumerate(rank.ops):
        header = int(op.kind) & _KIND_MASK
        deps = rank.preds[idx]
        if op.tag:
            header |= _FLAG_TAG
        if op.cpu:
            header |= _FLAG_CPU
        if deps:
            header |= _FLAG_DEPS
        buf.append(header)
        _write_varint(buf, op.size)
        if op.kind != OpType.CALC:
            _write_varint(buf, op.peer)
        if op.tag:
            _write_varint(buf, op.tag)
        if op.cpu:
            _write_varint(buf, op.cpu)
        if deps:
            _write_varint(buf, len(deps))
            for dep in deps:
                _write_varint(buf, idx - dep)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------
def decode_goal(data: bytes) -> GoalSchedule:
    """Decode a binary GOAL blob produced by :func:`encode_goal`."""
    if len(data) < 5 or data[:4] != MAGIC:
        raise GoalBinaryError("not a GOAL binary (bad magic)")
    version = data[4]
    if version != VERSION:
        raise GoalBinaryError(f"unsupported GOAL binary version {version}")
    pos = 5
    name_len, pos = _read_varint(data, pos)
    if pos + name_len > len(data):
        raise GoalBinaryError("truncated schedule name")
    name = data[pos : pos + name_len].decode("utf-8")
    pos += name_len
    num_ranks, pos = _read_varint(data, pos)
    if num_ranks <= 0:
        raise GoalBinaryError("num_ranks must be positive")
    schedule = GoalSchedule(num_ranks, name=name)
    for r in range(num_ranks):
        pos = _decode_rank(data, pos, schedule.ranks[r])
    if pos != len(data):
        raise GoalBinaryError(f"{len(data) - pos} trailing bytes after last rank")
    return schedule


def _decode_rank(data: bytes, pos: int, rank: RankSchedule) -> int:
    num_ops, pos = _read_varint(data, pos)
    for idx in range(num_ops):
        if pos >= len(data):
            raise GoalBinaryError("truncated op header")
        header = data[pos]
        pos += 1
        try:
            kind = OpType(header & _KIND_MASK)
        except ValueError as exc:
            raise GoalBinaryError(f"invalid op kind {header & _KIND_MASK}") from exc
        size, pos = _read_varint(data, pos)
        peer = None
        if kind != OpType.CALC:
            peer, pos = _read_varint(data, pos)
        tag = 0
        if header & _FLAG_TAG:
            tag, pos = _read_varint(data, pos)
        cpu = 0
        if header & _FLAG_CPU:
            cpu, pos = _read_varint(data, pos)
        deps: List[int] = []
        if header & _FLAG_DEPS:
            ndeps, pos = _read_varint(data, pos)
            for _ in range(ndeps):
                delta, pos = _read_varint(data, pos)
                if delta <= 0 or delta > idx:
                    raise GoalBinaryError(
                        f"invalid dependency delta {delta} for vertex {idx}"
                    )
                deps.append(idx - delta)
        rank.add_op(Op(kind, size, peer=peer, tag=tag, cpu=cpu), deps)
    return pos


# ---------------------------------------------------------------------------
# file helpers
# ---------------------------------------------------------------------------
def write_goal_binary(schedule: GoalSchedule, path: str) -> int:
    """Write ``schedule`` in binary form to ``path``; return the byte count."""
    blob = encode_goal(schedule)
    with open(path, "wb") as fh:
        fh.write(blob)
    return len(blob)


def read_goal_binary(path: str) -> GoalSchedule:
    """Read a binary GOAL file from ``path``."""
    with open(path, "rb") as fh:
        return decode_goal(fh.read())

"""NCCL trace → GOAL conversion (the 4-stage pipeline of paper §3.1.2 / Fig. 5).

Stage 1 (profiling) is performed by :class:`repro.tracers.nccl.NcclTracer`
or by loading an nsys-like report from disk.  This module implements:

* **Stage 2** — per GPU and per CUDA stream, NCCL kernels are linked in
  order, the computation between consecutive kernels is inferred from their
  timestamps, and the streams of a GPU are tied together with zero-cost
  dummy vertices so that they can execute concurrently on distinct compute
  streams.
* **Stage 3** — every NCCL collective is decomposed into its point-to-point
  algorithm according to the NCCL configuration (algorithm, protocol,
  channels) via :mod:`repro.collectives.nccl`; ncclSend/ncclRecv pairs are
  matched by their per-(source, destination) order.  A
  ``collective_algorithm`` override substitutes an algorithm from the
  :mod:`repro.collectives.algorithms` registry instead — including the
  hierarchical two-level variants over the report's physical node grouping
  and ``"auto"``, the LogGOPS autotuner.
* **Stage 4** — the per-GPU DAGs are grouped into per-node DAGs with
  intra-node transfers replaced by ``calc`` vertices
  (:func:`repro.schedgen.grouping.group_ranks_into_nodes`); alternative
  groupings support the paper's "what-if" restructuring.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.collectives import nccl as cnccl
from repro.collectives.algorithms import get_algorithm, select_algorithm
from repro.collectives.context import (
    CollectiveContext,
    TagAllocator,
    contiguous_groups,
    project_groups,
)
from repro.goal.builder import GoalBuilder
from repro.goal.schedule import GoalSchedule
from repro.schedgen.grouping import group_ranks_into_nodes
from repro.tracers.nccl import NCCL_COLLECTIVES, GpuKernel, NsysReport

#: Offset separating point-to-point (ncclSend/ncclRecv) tags from collective tags.
P2P_TAG_BASE = 1 << 29


class NcclTraceMismatchError(RuntimeError):
    """Raised when collective calls cannot be correlated across GPUs."""


@dataclass
class _StreamCursor:
    """Progress of one (gpu, stream) kernel list."""

    gpu: int
    stream: int
    kernels: List[GpuKernel]
    index: int = 0
    last_handle: Optional[int] = None
    prev_end_ns: int = 0
    blocked_gap_emitted: bool = False

    def done(self) -> bool:
        return self.index >= len(self.kernels)

    def head(self) -> GpuKernel:
        return self.kernels[self.index]


class NcclScheduleGenerator:
    """Converts an :class:`~repro.tracers.nccl.NsysReport` into GOAL.

    Parameters
    ----------
    report:
        The per-GPU trace.
    nccl_config:
        NCCL algorithm/protocol/channel configuration used for Stage 3.
    compute_scale:
        Multiplier on inferred computation (hardware retargeting, paper §7).
    gpus_per_node:
        Stage-4 grouping granularity; ``None`` uses the report's value, and
        ``1`` keeps one GOAL rank per GPU (no grouping).
    intra_node_ns_per_byte / intra_node_latency_ns:
        Intra-node (NVLink) transfer cost used when replacing same-node
        communication with ``calc`` vertices.
    collective_algorithm:
        Optional override of Stage 3's collective decomposition: a name
        from the :mod:`repro.collectives.algorithms` registry (e.g.
        ``"hier_rs"``, ``"recursive_halving_doubling"``) or ``"auto"`` for
        the LogGOPS autotuner.  Applies to every collective kind the name
        is registered for (others keep the NCCL chunked ring/tree path);
        the locality hierarchy groups consecutive GPU ids by the *effective*
        node width — the ``gpus_per_node`` override when one is given (so
        hierarchical algorithms optimise for the same node boundary Stage 4
        simulates, including "what-if" regroupings), else the report's
        physical ``gpus_per_node``.  ``None`` (the default) keeps the
        NCCL-configured decomposition exactly.
    """

    def __init__(
        self,
        report: NsysReport,
        nccl_config: Optional[cnccl.NcclConfig] = None,
        compute_scale: float = 1.0,
        gpus_per_node: Optional[int] = None,
        intra_node_ns_per_byte: float = 1.0 / 150.0,
        intra_node_latency_ns: int = 700,
        stream_stride: int = 16,
        collective_algorithm: Optional[str] = None,
        select_params=None,
    ) -> None:
        if compute_scale < 0:
            raise ValueError("compute_scale must be non-negative")
        self.report = report
        self.nccl_config = nccl_config or cnccl.NcclConfig()
        self.compute_scale = compute_scale
        self.gpus_per_node = report.gpus_per_node if gpus_per_node is None else gpus_per_node
        if self.gpus_per_node <= 0:
            raise ValueError("gpus_per_node must be positive")
        self.intra_node_ns_per_byte = intra_node_ns_per_byte
        self.intra_node_latency_ns = intra_node_latency_ns
        self.stream_stride = stream_stride
        self.collective_algorithm = collective_algorithm
        self.select_params = select_params
        # locality: consecutive GPU ids share a node, at the node width
        # Stage 4 will actually simulate (the explicit override wins so the
        # hierarchy and the grouping agree; see the class docstring)
        node_width = self.gpus_per_node if gpus_per_node is not None else report.gpus_per_node
        self._node_groups = contiguous_groups(report.num_gpus, max(1, node_width))
        self.tags = TagAllocator()

    # ------------------------------------------------------------------ public
    def generate_gpu_schedule(self, name: Optional[str] = None) -> GoalSchedule:
        """Stages 2–3: produce the GOAL schedule with one rank per GPU."""
        report = self.report
        builder = GoalBuilder(report.num_gpus, name=name or report.name)

        # stream indices are remapped to small consecutive ints per GPU so the
        # stream_stride bound of Stage 4 holds regardless of CUDA stream ids
        cursors: List[_StreamCursor] = []
        self._stream_slot: Dict[Tuple[int, int], int] = {}
        for gpu in range(report.num_gpus):
            for slot, stream_id in enumerate(sorted(report.streams[gpu])):
                self._stream_slot[(gpu, stream_id)] = slot
                cursors.append(
                    _StreamCursor(gpu=gpu, stream=stream_id, kernels=report.streams[gpu][stream_id].kernels)
                )

        # per-(src,dst) point-to-point order counters for send/recv correlation
        self._p2p_send_count: Dict[Tuple[int, int], int] = {}
        self._p2p_recv_count: Dict[Tuple[int, int], int] = {}

        progressed = True
        while progressed:
            progressed = False
            for cursor in cursors:
                if self._advance_stream(builder, cursor):
                    progressed = True
            if self._emit_ready_collectives(builder, cursors):
                progressed = True

        unconsumed = [(c.gpu, c.stream, len(c.kernels) - c.index) for c in cursors if not c.done()]
        if unconsumed:
            raise NcclTraceMismatchError(
                "NCCL collectives do not line up across GPUs; unconsumed kernels "
                f"(gpu, stream, remaining): {unconsumed[:10]}"
            )
        return builder.build()

    def generate(self, name: Optional[str] = None) -> GoalSchedule:
        """Full pipeline: Stages 2–4 (per-node schedule)."""
        gpu_schedule = self.generate_gpu_schedule(name=name)
        if self.gpus_per_node <= 1:
            return gpu_schedule
        return group_ranks_into_nodes(
            gpu_schedule,
            ranks_per_node=self.gpus_per_node,
            intra_node_ns_per_byte=self.intra_node_ns_per_byte,
            intra_node_latency_ns=self.intra_node_latency_ns,
            stream_stride=self.stream_stride,
            name=(name or self.report.name),
        )

    # --------------------------------------------------------------- internals
    def _stream_cpu(self, gpu: int, stream: int) -> int:
        return self._stream_slot[(gpu, stream)]

    def _emit_gap(self, builder: GoalBuilder, cursor: _StreamCursor, kernel: GpuKernel) -> None:
        gap = max(0, kernel.start_ns - cursor.prev_end_ns)
        gap = int(round(gap * self.compute_scale))
        if gap > 0:
            handle = builder.rank(cursor.gpu).calc(
                gap,
                cpu=self._stream_cpu(cursor.gpu, cursor.stream),
                requires=[cursor.last_handle] if cursor.last_handle is not None else [],
            )
            cursor.last_handle = handle

    def _advance_stream(self, builder: GoalBuilder, cursor: _StreamCursor) -> bool:
        """Emit compute/P2P kernels until the stream blocks on a collective."""
        progressed = False
        cpu = self._stream_cpu(cursor.gpu, cursor.stream)
        rb = builder.rank(cursor.gpu)
        while not cursor.done():
            kernel = cursor.head()
            if kernel.kind == "nccl" and kernel.op in NCCL_COLLECTIVES:
                if not cursor.blocked_gap_emitted:
                    self._emit_gap(builder, cursor, kernel)
                    cursor.blocked_gap_emitted = True
                return progressed
            self._emit_gap(builder, cursor, kernel)
            reqs = [cursor.last_handle] if cursor.last_handle is not None else []
            if kernel.kind == "compute":
                duration = int(round((kernel.end_ns - kernel.start_ns) * self.compute_scale))
                cursor.last_handle = rb.calc(max(0, duration), cpu=cpu, requires=reqs)
            elif kernel.op == "Send":
                key = (cursor.gpu, kernel.peer)
                count = self._p2p_send_count.get(key, 0)
                self._p2p_send_count[key] = count + 1
                tag = P2P_TAG_BASE + count
                cursor.last_handle = rb.send(max(1, kernel.size), dst=kernel.peer, tag=tag, cpu=cpu, requires=reqs)
            elif kernel.op == "Recv":
                key = (kernel.peer, cursor.gpu)
                count = self._p2p_recv_count.get(key, 0)
                self._p2p_recv_count[key] = count + 1
                tag = P2P_TAG_BASE + count
                cursor.last_handle = rb.recv(max(1, kernel.size), src=kernel.peer, tag=tag, cpu=cpu, requires=reqs)
            else:  # pragma: no cover - collectives handled above
                raise NcclTraceMismatchError(f"unexpected NCCL op {kernel.op}")
            cursor.prev_end_ns = kernel.end_ns
            cursor.index += 1
            progressed = True
        return progressed

    def _emit_ready_collectives(self, builder: GoalBuilder, cursors: List[_StreamCursor]) -> bool:
        """Emit collectives once every member GPU has blocked on the same one."""
        report = self.report
        blocked: Dict[Tuple[int, int, str], List[_StreamCursor]] = {}
        for cursor in cursors:
            if cursor.done():
                continue
            kernel = cursor.head()
            if kernel.kind == "nccl" and kernel.op in NCCL_COLLECTIVES:
                blocked.setdefault((kernel.comm, kernel.seq, kernel.op), []).append(cursor)

        emitted = False
        for (comm, seq, op), waiting in sorted(blocked.items(), key=lambda kv: kv[0]):
            members = report.communicators.get(comm)
            if members is None:
                raise NcclTraceMismatchError(f"kernel references unknown communicator {comm}")
            waiting_gpus = sorted(c.gpu for c in waiting)
            if waiting_gpus != sorted(members):
                continue
            self._emit_collective(builder, comm, members, op, waiting)
            emitted = True
        return emitted

    def _emit_collective(
        self,
        builder: GoalBuilder,
        comm: int,
        members: List[int],
        op: str,
        waiting: List[_StreamCursor],
    ) -> None:
        by_gpu = {c.gpu: c for c in waiting}
        sample = by_gpu[members[0]].head()
        size = max(1, sample.size)
        deps = {
            gpu: cursor.last_handle for gpu, cursor in by_gpu.items() if cursor.last_handle is not None
        }
        # place the decomposition on the stream each collective was launched on
        # (channels add further streams on top of this base)
        base_cpu = self._stream_cpu(members[0], by_gpu[members[0]].stream)
        ctx = CollectiveContext(
            builder,
            members,
            tags=self.tags,
            cpu=base_cpu,
            groups=self._comm_groups(members),
        )
        cfg = self.nccl_config
        exits = self._registry_emit(ctx, op, size, deps)
        if exits is not None:
            pass
        elif op == "AllReduce":
            exits = cnccl.allreduce(ctx, size, cfg, deps)
        elif op == "Broadcast":
            exits = cnccl.broadcast(ctx, size, cfg, root=0, deps=deps)
        elif op == "AllGather":
            exits = cnccl.allgather(ctx, size, cfg, deps)
        elif op == "ReduceScatter":
            exits = cnccl.reduce_scatter(ctx, size, cfg, deps)
        elif op == "AllToAll":
            exits = cnccl.alltoall(ctx, size, cfg, deps)
        else:  # pragma: no cover
            raise NcclTraceMismatchError(f"unsupported collective {op}")

        for gpu, cursor in by_gpu.items():
            if gpu in exits:
                cursor.last_handle = exits[gpu]
            cursor.prev_end_ns = cursor.head().end_ns
            cursor.index += 1
            cursor.blocked_gap_emitted = False

    #: NCCL kernel name -> collective kind of the algorithm registry.
    _OP_TO_COLLECTIVE = {
        "AllReduce": "allreduce",
        "AllGather": "allgather",
        "ReduceScatter": "reduce_scatter",
        "Broadcast": "bcast",
        "AllToAll": "alltoall",
    }

    def _comm_groups(self, members: List[int]) -> List[List[int]]:
        """Node-locality groups of one communicator (see ``project_groups``)."""
        return project_groups(self._node_groups, members)

    def _registry_emit(self, ctx: CollectiveContext, op: str, size: int, deps) -> Optional[Dict[int, int]]:
        """Decompose via the algorithm registry when an override is active.

        Returns ``None`` (NCCL chunked path) when no ``collective_algorithm``
        override is set, or when the named algorithm is not registered for
        this collective kind.
        """
        if self.collective_algorithm is None:
            return None
        kind = self._OP_TO_COLLECTIVE.get(op)
        if kind is None:
            return None
        name = self.collective_algorithm
        if name == "auto":
            name = select_algorithm(
                kind, size, ctx.size, params=self.select_params, groups=ctx.groups
            ).name
        else:
            try:
                get_algorithm(kind, name)
            except ValueError:
                return None
        return get_algorithm(kind, name).emit(ctx, size, deps, root=0)


def nccl_trace_to_goal(
    report: NsysReport,
    nccl_config: Optional[cnccl.NcclConfig] = None,
    compute_scale: float = 1.0,
    gpus_per_node: Optional[int] = None,
    name: Optional[str] = None,
    collective_algorithm: Optional[str] = None,
) -> GoalSchedule:
    """Convenience wrapper around :class:`NcclScheduleGenerator` (full pipeline)."""
    return NcclScheduleGenerator(
        report,
        nccl_config=nccl_config,
        compute_scale=compute_scale,
        gpus_per_node=gpus_per_node,
        collective_algorithm=collective_algorithm,
    ).generate(name=name)

"""Stage-4 grouping: merge per-GPU DAGs into per-node DAGs.

The paper's final GOAL-generation stage (§3.1.2, Stage 4) combines the DAGs
of all GPUs of a node into a single DAG per node and replaces sends/receives
between GPUs of the *same* node with ``calc`` vertices, since intra-node
traffic (NVLink) never reaches the inter-node fabric.  The same machinery is
reused for "what-if" regroupings (e.g. re-simulating an 8-GPU/2-node trace as
a 4-node, 2-GPU setup).

This module implements the transformation on arbitrary GOAL schedules:

* ranks are grouped according to a rank→node map,
* every op keeps its compute stream, shifted by ``rank_local_index *
  stream_stride`` so different GPUs of a node occupy disjoint streams (they
  execute concurrently),
* matching intra-node send/recv pairs (paired FIFO per ``(src, dst, tag)``
  channel) are replaced by ``calc`` vertices: the send pays the intra-node
  transfer cost (``latency + size * ns_per_byte``), the receive becomes a
  zero-cost vertex that *depends on* the send — preserving the
  synchronisation the message provided,
* inter-node sends/receives keep their semantics with peers remapped to node
  ids,
* the merged DAG is emitted in a topological order so the GOAL
  definition-before-use invariant holds.
"""
from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Optional, Sequence, Tuple

from repro.goal.ops import Op, OpType
from repro.goal.schedule import GoalSchedule


def group_ranks_into_nodes(
    schedule: GoalSchedule,
    ranks_per_node: Optional[int] = None,
    node_of: Optional[Sequence[int]] = None,
    intra_node_ns_per_byte: float = 1.0 / 150.0,
    intra_node_latency_ns: int = 700,
    stream_stride: int = 16,
    name: Optional[str] = None,
) -> GoalSchedule:
    """Group the ranks of ``schedule`` into nodes and return the node-level schedule.

    Parameters
    ----------
    schedule:
        The per-GPU (or generally fine-grained) schedule.
    ranks_per_node:
        Group consecutive ranks in blocks of this size (mutually exclusive
        with ``node_of``).
    node_of:
        Explicit rank→node map (one entry per rank of ``schedule``).
    intra_node_ns_per_byte:
        Cost per byte of an intra-node transfer (default 1/150 ns/B =
        150 GB/s, the GH200 NVLink bandwidth quoted in the paper).
    intra_node_latency_ns:
        Fixed latency of an intra-node transfer.
    stream_stride:
        Compute-stream offset between co-located ranks; must exceed the
        largest stream index used by any single rank.
    name:
        Name of the resulting schedule.
    """
    if (ranks_per_node is None) == (node_of is None):
        raise ValueError("specify exactly one of ranks_per_node / node_of")
    if node_of is None:
        if ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        node_of = [r // ranks_per_node for r in range(schedule.num_ranks)]
    else:
        node_of = list(node_of)
        if len(node_of) != schedule.num_ranks:
            raise ValueError("node_of must have one entry per rank")
    num_nodes = max(node_of) + 1

    for rank in schedule.ranks:
        for op in rank.ops:
            if op.cpu >= stream_stride:
                raise ValueError(
                    f"rank {rank.rank} uses compute stream {op.cpu} >= stream_stride "
                    f"{stream_stride}; increase stream_stride"
                )

    # per node: member ranks in order, and each rank's local index
    members: Dict[int, List[int]] = defaultdict(list)
    for r, node in enumerate(node_of):
        members[node].append(r)
    local_index = {r: members[node_of[r]].index(r) for r in range(schedule.num_ranks)}

    # pair up intra-node send/recv ops: channel -> FIFO lists of vertices
    intra_pairs = _pair_intra_node_messages(schedule, node_of)

    merged = GoalSchedule(num_nodes, name=name or f"{schedule.name}-grouped")

    for node in range(num_nodes):
        node_ranks = members.get(node, [])
        if not node_ranks:
            continue
        _emit_node(
            merged,
            schedule,
            node,
            node_ranks,
            node_of,
            local_index,
            intra_pairs,
            intra_node_ns_per_byte,
            intra_node_latency_ns,
            stream_stride,
        )
    return merged


def _pair_intra_node_messages(
    schedule: GoalSchedule, node_of: Sequence[int]
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """Match intra-node sends with their receives.

    Returns a map ``(rank, vertex) -> (peer_rank, peer_vertex)`` defined for
    both directions of every matched pair.  Unmatched intra-node comm ops are
    simply absent from the map (they degrade to plain calcs).
    """
    sends: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
    recvs: Dict[Tuple[int, int, int], deque] = defaultdict(deque)
    for rank in schedule.ranks:
        for vertex, op in enumerate(rank.ops):
            if not op.is_comm or node_of[rank.rank] != node_of[op.peer]:
                continue
            if op.kind == OpType.SEND:
                sends[(rank.rank, op.peer, op.tag)].append(vertex)
            else:
                recvs[(op.peer, rank.rank, op.tag)].append(vertex)

    pairs: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for channel, send_list in sends.items():
        src, dst, _tag = channel
        recv_list = recvs.get(channel, deque())
        while send_list and recv_list:
            sv = send_list.popleft()
            rv = recv_list.popleft()
            pairs[(src, sv)] = (dst, rv)
            pairs[(dst, rv)] = (src, sv)
    return pairs


def _emit_node(
    merged: GoalSchedule,
    schedule: GoalSchedule,
    node: int,
    node_ranks: List[int],
    node_of: Sequence[int],
    local_index: Dict[int, int],
    intra_pairs: Dict[Tuple[int, int], Tuple[int, int]],
    ns_per_byte: float,
    latency_ns: int,
    stream_stride: int,
) -> None:
    """Topologically merge the DAGs of ``node_ranks`` into ``merged.ranks[node]``."""
    # Build the merged dependency graph over (rank, vertex) pairs.
    node_set = set(node_ranks)
    indegree: Dict[Tuple[int, int], int] = {}
    successors: Dict[Tuple[int, int], List[Tuple[int, int]]] = defaultdict(list)

    for r in node_ranks:
        rank_sched = schedule.ranks[r]
        for vertex in range(len(rank_sched.ops)):
            key = (r, vertex)
            deps = list(rank_sched.preds[vertex])
            indegree[key] = len(deps)
            for d in deps:
                successors[(r, d)].append(key)

    # cross edges from intra-node send -> matching recv
    for (r, vertex), (peer_rank, peer_vertex) in intra_pairs.items():
        if r not in node_set:
            continue
        op = schedule.ranks[r].ops[vertex]
        if op.kind != OpType.SEND:
            continue
        key = (peer_rank, peer_vertex)
        if key in indegree:
            indegree[key] += 1
            successors[(r, vertex)].append(key)

    # Kahn's algorithm with deterministic ordering (rank, vertex)
    ready = sorted(key for key, deg in indegree.items() if deg == 0)
    ready_q = deque(ready)
    out_rank = merged.ranks[node]
    new_index: Dict[Tuple[int, int], int] = {}
    emitted = 0

    while ready_q:
        key = ready_q.popleft()
        r, vertex = key
        op = schedule.ranks[r].ops[vertex]
        # translate dependencies (original preds + cross edge for paired recvs)
        dep_keys = [(r, d) for d in schedule.ranks[r].preds[vertex]]
        pair = intra_pairs.get(key)
        is_intra = op.is_comm and node_of[op.peer] == node
        if is_intra and pair is not None and op.kind == OpType.RECV:
            dep_keys.append(pair)
        new_deps = [new_index[d] for d in dep_keys if d in new_index]

        new_cpu = local_index[r] * stream_stride + op.cpu
        if op.is_comm and is_intra:
            if op.kind == OpType.SEND:
                cost = latency_ns + int(round(op.size * ns_per_byte))
                new_op = Op.calc(cost, cpu=new_cpu)
            else:
                new_op = Op.calc(0, cpu=new_cpu)
        elif op.is_comm:
            new_op = op.copy()
            new_op.label = None
            new_op.cpu = new_cpu
            new_op.peer = node_of[op.peer]
        else:
            new_op = op.copy()
            new_op.label = None
            new_op.cpu = new_cpu
        new_index[key] = out_rank.add_op(new_op, new_deps)
        emitted += 1

        for succ in successors.get(key, ()):  # unlock successors
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready_q.append(succ)

    total = sum(len(schedule.ranks[r].ops) for r in node_ranks)
    if emitted != total:
        raise RuntimeError(
            f"node {node}: grouping produced a cyclic dependency "
            f"({emitted} of {total} vertices emitted); the intra-node message "
            "pairing is inconsistent with the per-rank orderings"
        )

"""Schedule generators: convert traces (or synthetic patterns) into GOAL.

* :mod:`repro.schedgen.mpi` — liballprof MPI traces → GOAL (the paper's
  Schedgen, §3.1.1): infers computation from timestamp gaps and substitutes
  collectives with their point-to-point algorithms,
* :mod:`repro.schedgen.nccl` — nsys-like NCCL traces → GOAL (the 4-stage
  pipeline of §3.1.2 / Fig. 5), including GPU→node grouping with intra-node
  communication replaced by ``calc`` vertices,
* :mod:`repro.schedgen.grouping` — the Stage-4 / multi-tenant DAG grouping
  transformation, usable on any GOAL schedule,
* :mod:`repro.schedgen.storage` — SPC block-I/O traces → GOAL for the Azure
  Direct Drive architecture (§3.1.3 / Fig. 6),
* :mod:`repro.schedgen.synthetic` — the synthetic microbenchmarks (incast,
  permutation, all-to-all, ring allreduce) that the paper argues are not
  sufficient on their own.
"""
from repro.schedgen.mpi import MpiScheduleGenerator, mpi_trace_to_goal
from repro.schedgen.nccl import NcclScheduleGenerator, nccl_trace_to_goal
from repro.schedgen.grouping import group_ranks_into_nodes
from repro.schedgen.storage import DirectDriveConfig, DirectDriveScheduleGenerator, storage_trace_to_goal
from repro.schedgen.synthetic import (
    incast,
    permutation,
    all_to_all,
    ring_allreduce_microbenchmark,
    uniform_random_pairs,
)

__all__ = [
    "MpiScheduleGenerator",
    "mpi_trace_to_goal",
    "NcclScheduleGenerator",
    "nccl_trace_to_goal",
    "group_ranks_into_nodes",
    "DirectDriveConfig",
    "DirectDriveScheduleGenerator",
    "storage_trace_to_goal",
    "incast",
    "permutation",
    "all_to_all",
    "ring_allreduce_microbenchmark",
    "uniform_random_pairs",
]

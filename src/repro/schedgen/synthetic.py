"""Synthetic microbenchmark workloads.

These are the traffic patterns that "many impactful networking studies
primarily rely on" (paper §1): incast, permutation and all-to-all, plus a
bare ring-allreduce pattern.  The paper's Fig. 1(C) uses two of them (incast
and permutation) as the contrast against the realistic LLM-training trace,
so they are first-class citizens of the toolchain even though its whole
point is that they are not sufficient on their own.
"""
from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.collectives import mpi as calgs
from repro.collectives.context import CollectiveContext
from repro.goal.builder import GoalBuilder
from repro.goal.schedule import GoalSchedule


def incast(
    num_ranks: int,
    message_size: int,
    receiver: int = 0,
    senders: Optional[Sequence[int]] = None,
    messages_per_sender: int = 1,
    name: str = "incast",
) -> GoalSchedule:
    """All senders transmit ``message_size`` bytes to one receiver simultaneously.

    Parameters
    ----------
    num_ranks:
        Total ranks in the schedule.
    message_size:
        Bytes each sender transmits per message.
    receiver:
        Rank receiving everything.
    senders:
        Sending ranks; defaults to every rank except the receiver.
    messages_per_sender:
        Back-to-back messages each sender transmits (chained).
    """
    if not (0 <= receiver < num_ranks):
        raise ValueError("receiver out of range")
    builder = GoalBuilder(num_ranks, name=name)
    sender_list = list(senders) if senders is not None else [r for r in range(num_ranks) if r != receiver]
    if receiver in sender_list:
        raise ValueError("receiver cannot also be a sender")
    rb = builder.rank(receiver)
    for s in sender_list:
        sb = builder.rank(s)
        prev_send = None
        prev_recv = None
        for m in range(messages_per_sender):
            tag = s * 1_000 + m
            prev_send = sb.send(
                message_size, dst=receiver, tag=tag, requires=[prev_send] if prev_send is not None else []
            )
            prev_recv = rb.recv(
                message_size, src=s, tag=tag, requires=[prev_recv] if prev_recv is not None else []
            )
    return builder.build()


def permutation(
    num_ranks: int,
    message_size: int,
    seed: int = 0,
    messages_per_rank: int = 1,
    name: str = "permutation",
) -> GoalSchedule:
    """Every rank sends to exactly one other rank under a random derangement."""
    if num_ranks < 2:
        raise ValueError("permutation needs at least 2 ranks")
    rng = np.random.default_rng(seed)
    # random derangement by rejection (fast for any practical size)
    while True:
        perm = rng.permutation(num_ranks)
        if not np.any(perm == np.arange(num_ranks)):
            break
    builder = GoalBuilder(num_ranks, name=name)
    for src in range(num_ranks):
        dst = int(perm[src])
        sb = builder.rank(src)
        db = builder.rank(dst)
        prev_s = None
        prev_r = None
        for m in range(messages_per_rank):
            tag = src * 1_000 + m
            prev_s = sb.send(message_size, dst=dst, tag=tag, requires=[prev_s] if prev_s is not None else [])
            prev_r = db.recv(message_size, src=src, tag=tag, requires=[prev_r] if prev_r is not None else [])
    return builder.build()


def all_to_all(num_ranks: int, per_pair_size: int, name: str = "all-to-all") -> GoalSchedule:
    """Full-mesh exchange: every rank sends ``per_pair_size`` bytes to every other rank."""
    builder = GoalBuilder(num_ranks, name=name)
    ctx = CollectiveContext(builder, list(range(num_ranks)))
    calgs.pairwise_alltoall(ctx, per_pair_size)
    return builder.build()


def ring_allreduce_microbenchmark(
    num_ranks: int, buffer_size: int, repetitions: int = 1, name: str = "ring-allreduce"
) -> GoalSchedule:
    """Back-to-back ring allreduces of ``buffer_size`` bytes (no compute)."""
    builder = GoalBuilder(num_ranks, name=name)
    ctx = CollectiveContext(builder, list(range(num_ranks)))
    deps = None
    for _ in range(repetitions):
        deps = calgs.ring_allreduce(ctx, buffer_size, deps)
    return builder.build()


def uniform_random_pairs(
    num_ranks: int,
    num_messages: int,
    message_size: int,
    seed: int = 0,
    name: str = "uniform-random",
) -> GoalSchedule:
    """``num_messages`` messages between uniformly random (src, dst) pairs."""
    if num_ranks < 2:
        raise ValueError("need at least 2 ranks")
    rng = np.random.default_rng(seed)
    builder = GoalBuilder(num_ranks, name=name)
    last_send = [None] * num_ranks
    last_recv = [None] * num_ranks
    for m in range(num_messages):
        src = int(rng.integers(num_ranks))
        dst = int(rng.integers(num_ranks - 1))
        if dst >= src:
            dst += 1
        tag = m
        sb = builder.rank(src)
        db = builder.rank(dst)
        last_send[src] = sb.send(
            message_size, dst=dst, tag=tag, requires=[last_send[src]] if last_send[src] is not None else []
        )
        last_recv[dst] = db.recv(
            message_size, src=src, tag=tag, requires=[last_recv[dst]] if last_recv[dst] is not None else []
        )
    return builder.build()

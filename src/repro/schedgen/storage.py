"""SPC block-I/O trace → GOAL for the Azure Direct Drive architecture.

The paper's storage support (§3.1.3 / Fig. 6) replays block-level I/O traces
against a model of Microsoft's Direct Drive disaggregated block store.  The
service roles modelled here, following the paper's Fig. 6 and the public
description it cites:

* **VDC / client node** — the VM host whose virtual-disk client issues the
  block requests recorded in the SPC trace,
* **CCS** (Change Coordinator Service) — tells the client which BSS holds
  the addressed block range (consulted once per request),
* **BSS** (Block Storage Service) — stores the data; reads return the
  requested bytes, writes are replicated to ``replication_factor`` BSS
  instances before being acknowledged,
* **MDS** (Metadata Service) — consulted periodically (every
  ``metadata_every`` requests per client) for slice-map refreshes,
* **GS / SLB** (Gateway Service / Software Load Balancer) — contacted once
  per client at session setup.

Each request becomes a small DAG: the client pays the recorded inter-arrival
gap as a ``calc`` (so the traced arrival process is preserved), exchanges a
lookup with a CCS, then transfers data to/from a BSS.  Requests are issued
open-loop: a slow response does not delay the client's subsequent requests,
which is what the message-completion-time (MCT) analysis of Fig. 11 measures.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.goal.builder import GoalBuilder, RankBuilder
from repro.goal.schedule import GoalSchedule
from repro.tracers.storage import SpcRecord, SpcTrace

#: Size of control-plane messages (requests, lookups, acknowledgements).
CONTROL_BYTES = 256


@dataclass(frozen=True)
class DirectDriveConfig:
    """Shape of the simulated Direct Drive deployment.

    The default deployment (4 clients, 4 CCS, 8 BSS, 1 MDS, 1 GS, 1 SLB =
    19 ranks) fits one or two racks of the fat-tree topologies used in the
    storage case study.
    """

    num_clients: int = 4
    num_ccs: int = 4
    num_bss: int = 8
    replication_factor: int = 3
    metadata_every: int = 64
    ccs_service_ns: int = 2_000
    bss_service_ns: int = 10_000
    client_service_ns: int = 1_000
    timescale: float = 1.0
    #: Concurrent request-processing threads per service instance; each
    #: request's server-side work is placed on one of these compute streams so
    #: a storage server is not an artificial single-threaded bottleneck.
    server_threads: int = 8

    def __post_init__(self) -> None:
        if min(self.num_clients, self.num_ccs, self.num_bss) <= 0:
            raise ValueError("num_clients, num_ccs and num_bss must be positive")
        if self.replication_factor < 1 or self.replication_factor > self.num_bss:
            raise ValueError("replication_factor must be in [1, num_bss]")
        if self.metadata_every <= 0:
            raise ValueError("metadata_every must be positive")
        if self.timescale <= 0:
            raise ValueError("timescale must be positive")
        if self.server_threads <= 0:
            raise ValueError("server_threads must be positive")

    # -- rank layout --------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self.num_clients + self.num_ccs + self.num_bss + 3  # + MDS, GS, SLB

    def client_rank(self, i: int) -> int:
        return i % self.num_clients

    def ccs_rank(self, i: int) -> int:
        return self.num_clients + (i % self.num_ccs)

    def bss_rank(self, i: int) -> int:
        return self.num_clients + self.num_ccs + (i % self.num_bss)

    @property
    def mds_rank(self) -> int:
        return self.num_clients + self.num_ccs + self.num_bss

    @property
    def gs_rank(self) -> int:
        return self.mds_rank + 1

    @property
    def slb_rank(self) -> int:
        return self.mds_rank + 2

    def role_of(self, rank: int) -> str:
        """Human-readable role of a rank (used in reports and tests)."""
        if rank < self.num_clients:
            return f"client{rank}"
        if rank < self.num_clients + self.num_ccs:
            return f"ccs{rank - self.num_clients}"
        if rank < self.num_clients + self.num_ccs + self.num_bss:
            return f"bss{rank - self.num_clients - self.num_ccs}"
        return {self.mds_rank: "mds", self.gs_rank: "gs", self.slb_rank: "slb"}[rank]


class DirectDriveScheduleGenerator:
    """Builds the GOAL schedule replaying an SPC trace against Direct Drive."""

    def __init__(self, trace: SpcTrace, config: Optional[DirectDriveConfig] = None) -> None:
        self.trace = trace
        self.config = config or DirectDriveConfig()
        self._next_tag = 1

    def _tag(self) -> int:
        tag = self._next_tag
        self._next_tag += 1
        return tag

    # ------------------------------------------------------------------ public
    def generate(self, name: Optional[str] = None) -> GoalSchedule:
        cfg = self.config
        builder = GoalBuilder(cfg.num_ranks, name=name or f"direct-drive-{self.trace.name}")

        self._session_setup(builder)

        # per-client open-loop arrival chain (the last arrival calc per client)
        arrival_chain: Dict[int, Optional[int]] = {c: None for c in range(cfg.num_clients)}
        last_ts: Dict[int, float] = {c: self.trace.records[0].timestamp if len(self.trace) else 0.0
                                     for c in range(cfg.num_clients)}
        requests_seen: Dict[int, int] = {c: 0 for c in range(cfg.num_clients)}

        for i, record in enumerate(self.trace):
            client = cfg.client_rank(record.asu)
            gap_ns = max(0, int(round((record.timestamp - last_ts[client]) * 1e9 * cfg.timescale)))
            last_ts[client] = record.timestamp
            cb = builder.rank(client)
            prev = arrival_chain[client]
            arrival = cb.calc(gap_ns, requires=[prev] if prev is not None else [])
            arrival_chain[client] = arrival

            thread = i % cfg.server_threads
            self._emit_request(builder, i, record, client, arrival, thread)

            requests_seen[client] += 1
            if requests_seen[client] % cfg.metadata_every == 0:
                self._emit_metadata_refresh(builder, client, arrival, thread)

        return builder.build()

    # --------------------------------------------------------------- internals
    def _session_setup(self, builder: GoalBuilder) -> None:
        """Initial GS / SLB handshake performed once per client."""
        cfg = self.config
        for client in range(cfg.num_clients):
            cb = builder.rank(client)
            tag = self._tag()
            s = cb.send(CONTROL_BYTES, dst=cfg.slb_rank, tag=tag)
            slb = builder.rank(cfg.slb_rank)
            r = slb.recv(CONTROL_BYTES, src=client, tag=tag)
            fwd_tag = self._tag()
            fwd = slb.send(CONTROL_BYTES, dst=cfg.gs_rank, tag=fwd_tag, requires=[r])
            gs = builder.rank(cfg.gs_rank)
            gr = gs.recv(CONTROL_BYTES, src=cfg.slb_rank, tag=fwd_tag)
            reply_tag = self._tag()
            gs.send(CONTROL_BYTES, dst=client, tag=reply_tag, requires=[gr])
            cb.recv(CONTROL_BYTES, src=cfg.gs_rank, tag=reply_tag, requires=[s])

    def _emit_request(
        self, builder: GoalBuilder, index: int, record: SpcRecord, client: int, arrival: int, thread: int
    ) -> None:
        cfg = self.config
        cb = builder.rank(client)
        ccs = cfg.ccs_rank(record.lba >> 12)
        primary_bss = cfg.bss_rank(record.lba >> 8)

        # 1. client -> CCS lookup, CCS -> client response
        lookup_tag = self._tag()
        reply_tag = self._tag()
        lookup = cb.send(CONTROL_BYTES, dst=ccs, tag=lookup_tag, cpu=thread, requires=[arrival])
        ccs_b = builder.rank(ccs)
        ccs_recv = ccs_b.recv(CONTROL_BYTES, src=client, tag=lookup_tag, cpu=thread)
        ccs_work = ccs_b.calc(cfg.ccs_service_ns, cpu=thread, requires=[ccs_recv])
        ccs_b.send(CONTROL_BYTES, dst=client, tag=reply_tag, cpu=thread, requires=[ccs_work])
        ccs_reply = cb.recv(CONTROL_BYTES, src=ccs, tag=reply_tag, cpu=thread, requires=[lookup])

        if record.is_read:
            self._emit_read(builder, record, client, primary_bss, ccs_reply, thread)
        else:
            self._emit_write(builder, record, client, primary_bss, ccs_reply, thread)

    def _emit_read(
        self, builder: GoalBuilder, record: SpcRecord, client: int, bss: int, after: int, thread: int
    ) -> None:
        cfg = self.config
        cb = builder.rank(client)
        req_tag = self._tag()
        data_tag = self._tag()
        req = cb.send(CONTROL_BYTES, dst=bss, tag=req_tag, cpu=thread, requires=[after])
        bss_b = builder.rank(bss)
        bss_recv = bss_b.recv(CONTROL_BYTES, src=client, tag=req_tag, cpu=thread)
        bss_work = bss_b.calc(cfg.bss_service_ns, cpu=thread, requires=[bss_recv])
        bss_b.send(record.size, dst=client, tag=data_tag, cpu=thread, requires=[bss_work])
        data = cb.recv(record.size, src=bss, tag=data_tag, cpu=thread, requires=[req])
        cb.calc(cfg.client_service_ns, cpu=thread, requires=[data])

    def _emit_write(
        self, builder: GoalBuilder, record: SpcRecord, client: int, primary: int, after: int, thread: int
    ) -> None:
        cfg = self.config
        cb = builder.rank(client)
        data_tag = self._tag()
        ack_tag = self._tag()

        data = cb.send(record.size, dst=primary, tag=data_tag, cpu=thread, requires=[after])
        pb = builder.rank(primary)
        p_recv = pb.recv(record.size, src=client, tag=data_tag, cpu=thread)
        p_work = pb.calc(cfg.bss_service_ns, cpu=thread, requires=[p_recv])

        # replicate to the next replication_factor - 1 BSS instances
        replica_acks: List[int] = []
        primary_index = primary - cfg.num_clients - cfg.num_ccs
        for r in range(1, cfg.replication_factor):
            replica = cfg.bss_rank(primary_index + r)
            if replica == primary:
                continue
            rep_tag = self._tag()
            rep_ack_tag = self._tag()
            pb.send(record.size, dst=replica, tag=rep_tag, cpu=thread, requires=[p_work])
            rb = builder.rank(replica)
            rr = rb.recv(record.size, src=primary, tag=rep_tag, cpu=thread)
            rw = rb.calc(cfg.bss_service_ns, cpu=thread, requires=[rr])
            rb.send(CONTROL_BYTES, dst=primary, tag=rep_ack_tag, cpu=thread, requires=[rw])
            replica_acks.append(pb.recv(CONTROL_BYTES, src=replica, tag=rep_ack_tag, cpu=thread, requires=[p_work]))

        ack_deps = [p_work] + replica_acks
        pb.send(CONTROL_BYTES, dst=client, tag=ack_tag, cpu=thread, requires=ack_deps)
        ack = cb.recv(CONTROL_BYTES, src=primary, tag=ack_tag, cpu=thread, requires=[data])
        cb.calc(cfg.client_service_ns, cpu=thread, requires=[ack])

    def _emit_metadata_refresh(self, builder: GoalBuilder, client: int, after: int, thread: int) -> None:
        cfg = self.config
        cb = builder.rank(client)
        req_tag = self._tag()
        reply_tag = self._tag()
        req = cb.send(CONTROL_BYTES, dst=cfg.mds_rank, tag=req_tag, cpu=thread, requires=[after])
        mds = builder.rank(cfg.mds_rank)
        mr = mds.recv(CONTROL_BYTES, src=client, tag=req_tag, cpu=thread)
        mw = mds.calc(cfg.ccs_service_ns, cpu=thread, requires=[mr])
        mds.send(4096, dst=client, tag=reply_tag, cpu=thread, requires=[mw])
        cb.recv(4096, src=cfg.mds_rank, tag=reply_tag, cpu=thread, requires=[req])


def storage_trace_to_goal(
    trace: SpcTrace, config: Optional[DirectDriveConfig] = None, name: Optional[str] = None
) -> GoalSchedule:
    """Convenience wrapper around :class:`DirectDriveScheduleGenerator`."""
    return DirectDriveScheduleGenerator(trace, config=config).generate(name=name)

"""MPI trace → GOAL conversion (the paper's Schedgen, §3.1.1).

The generator walks every rank's traced call sequence:

* the gap between the end of one call and the start of the next becomes a
  ``calc`` vertex (the inferred computation), optionally scaled by
  ``compute_scale`` to retarget a different machine (paper §7),
* point-to-point calls become ``send`` / ``recv`` vertices (``MPI_Sendrecv``
  becomes a send and a receive that may proceed concurrently),
* collective calls are substituted by their point-to-point algorithms,
  resolved through the :mod:`repro.collectives.algorithms` registry and
  selected per collective via the ``algorithms`` mapping — including the
  hierarchical two-level algorithms (pass ``groups`` or a ``topology`` to
  derive the locality partition) and ``"auto"``, which asks the registry's
  LogGOPS autotuner to pick per (collective, size, group shape).

Because a collective's decomposition spans all ranks of its communicator,
ranks are processed co-routine style: each rank advances until it blocks on a
collective; once every member of a communicator blocks on the same
collective instance (same per-communicator sequence number), that collective
is emitted and the ranks resume.  A trace in which collectives do not line up
(as would deadlock in a real MPI run) raises :class:`TraceMismatchError`.
"""
from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.collectives import mpi as calgs
from repro.collectives.algorithms import get_algorithm, select_algorithm
from repro.collectives.context import (
    CollectiveContext,
    TagAllocator,
    groups_from_topology,
    project_groups,
)
from repro.goal.builder import GoalBuilder
from repro.goal.schedule import GoalSchedule
from repro.tracers.mpi import COLLECTIVE_CALLS, MpiEvent, MpiTrace

#: Offset separating application point-to-point tags from collective tags.
P2P_TAG_BASE = 1 << 30


class TraceMismatchError(RuntimeError):
    """Raised when the per-rank call sequences cannot be reconciled.

    This happens when ranks of one communicator disagree on the order of
    collectives — such a program would also deadlock on a real machine.
    """


DEFAULT_ALGORITHMS: Dict[str, str] = {
    "MPI_Allreduce": "ring",
    "MPI_Bcast": "binomial",
    "MPI_Reduce": "binomial",
    "MPI_Barrier": "dissemination",
    "MPI_Allgather": "ring",
    "MPI_Alltoall": "pairwise",
    "MPI_Gather": "linear",
    "MPI_Scatter": "linear",
    "MPI_Reduce_scatter": "ring",
}

#: Below this size, allreduces default to recursive doubling (latency bound),
#: above it to the ring algorithm (bandwidth bound) — mirroring common MPI
#: library switch points.
ALLREDUCE_RD_THRESHOLD = 16 * 1024


@dataclass
class _RankCursor:
    """Progress of one rank through its traced event list."""

    index: int = 0
    last_handle: Optional[int] = None
    prev_end_ns: int = 0
    blocked_gap_emitted: bool = False


class MpiScheduleGenerator:
    """Converts an :class:`~repro.tracers.mpi.MpiTrace` into a GOAL schedule.

    Parameters
    ----------
    trace:
        The input trace.
    algorithms:
        Per-collective algorithm overrides (see :data:`DEFAULT_ALGORITHMS`).
        Values resolve through the :mod:`repro.collectives.algorithms`
        registry; ``"auto"`` engages the LogGOPS autotuner per collective
        instance.
    compute_scale:
        Multiplier applied to every inferred computation gap (hardware
        retargeting knob).
    reduce_ns_per_byte:
        Cost of reduction arithmetic inserted into reducing collectives.
    groups:
        Locality partition of the *global* ranks (e.g. ranks per node),
        required by the hierarchical algorithms and consulted by
        ``"auto"``.  Derived from ``topology`` when omitted.
    topology / placement:
        Optional :class:`~repro.network.topology.base.Topology` (plus a
        ``{rank -> host}`` placement) used to derive ``groups`` and to
        make ``"auto"`` selections latency/oversubscription-aware.
    select_params:
        :class:`~repro.network.config.LogGOPSParams` priced by ``"auto"``
        (defaults to the paper's AI-cluster values).
    """

    def __init__(
        self,
        trace: MpiTrace,
        algorithms: Optional[Dict[str, str]] = None,
        compute_scale: float = 1.0,
        reduce_ns_per_byte: float = 0.0,
        groups: Optional[List[List[int]]] = None,
        topology=None,
        placement: Optional[Dict[int, int]] = None,
        select_params=None,
    ) -> None:
        if compute_scale < 0:
            raise ValueError("compute_scale must be non-negative")
        self.trace = trace
        self.algorithms = dict(DEFAULT_ALGORITHMS)
        if algorithms:
            self.algorithms.update(algorithms)
        self.compute_scale = compute_scale
        self.reduce_ns_per_byte = reduce_ns_per_byte
        if groups is None and topology is not None:
            groups = groups_from_topology(range(trace.num_ranks), topology, placement)
        self.groups = [list(g) for g in groups] if groups is not None else None
        self.topology = topology
        self.select_params = select_params
        self.tags = TagAllocator()

    # ------------------------------------------------------------------ public
    def generate(self, name: Optional[str] = None) -> GoalSchedule:
        """Run the conversion and return the GOAL schedule."""
        trace = self.trace
        builder = GoalBuilder(trace.num_ranks, name=name or trace.name)
        cursors = [_RankCursor() for _ in range(trace.num_ranks)]

        progressed = True
        while progressed:
            progressed = False
            # advance every rank to its next collective (or to the end)
            for rank in range(trace.num_ranks):
                if self._advance_rank(builder, cursors, rank):
                    progressed = True
            # emit every collective whose members are all blocked on it
            if self._emit_ready_collectives(builder, cursors):
                progressed = True

        remaining = [
            (rank, len(trace.events[rank]) - cursors[rank].index)
            for rank in range(trace.num_ranks)
            if cursors[rank].index < len(trace.events[rank])
        ]
        if remaining:
            raise TraceMismatchError(
                "collective operations in the trace do not line up across ranks; "
                f"unconsumed events per rank: {remaining[:10]}"
            )
        return builder.build()

    # --------------------------------------------------------------- internals
    def _scaled_gap(self, event: MpiEvent, cursor: _RankCursor) -> int:
        gap = max(0, event.start_ns - cursor.prev_end_ns)
        return int(round(gap * self.compute_scale))

    def _emit_gap(self, builder: GoalBuilder, rank: int, cursor: _RankCursor, event: MpiEvent) -> None:
        """Insert the inferred-computation calc before ``event`` (if any)."""
        gap = self._scaled_gap(event, cursor)
        if gap > 0:
            handle = builder.rank(rank).calc(
                gap, requires=[cursor.last_handle] if cursor.last_handle is not None else []
            )
            cursor.last_handle = handle

    def _advance_rank(self, builder: GoalBuilder, cursors: List[_RankCursor], rank: int) -> bool:
        """Emit P2P/compute ops for ``rank`` until it blocks on a collective.

        Returns True when at least one event was consumed.
        """
        cursor = cursors[rank]
        events = self.trace.events[rank]
        progressed = False
        while cursor.index < len(events):
            event = events[cursor.index]
            if event.call in COLLECTIVE_CALLS:
                if not cursor.blocked_gap_emitted:
                    self._emit_gap(builder, rank, cursor, event)
                    cursor.blocked_gap_emitted = True
                return progressed
            self._emit_gap(builder, rank, cursor, event)
            self._emit_p2p(builder, rank, cursor, event)
            cursor.prev_end_ns = event.end_ns
            cursor.index += 1
            progressed = True
        return progressed

    def _emit_p2p(self, builder: GoalBuilder, rank: int, cursor: _RankCursor, event: MpiEvent) -> None:
        rb = builder.rank(rank)
        reqs = [cursor.last_handle] if cursor.last_handle is not None else []
        tag = P2P_TAG_BASE + event.tag
        if event.call == "MPI_Send":
            cursor.last_handle = rb.send(max(1, event.size), dst=event.peer, tag=tag, requires=reqs)
        elif event.call == "MPI_Recv":
            cursor.last_handle = rb.recv(max(1, event.size), src=event.peer, tag=tag, requires=reqs)
        elif event.call == "MPI_Sendrecv":
            s = rb.send(max(1, event.size), dst=event.peer, tag=tag, requires=reqs)
            r = rb.recv(max(1, event.recv_size or event.size), src=event.recv_peer, tag=tag, requires=reqs)
            cursor.last_handle = rb.join([s, r])
        else:  # pragma: no cover - guarded by KNOWN_CALLS
            raise ValueError(f"unsupported point-to-point call {event.call}")

    # ----------------------------------------------------------- collectives
    def _emit_ready_collectives(self, builder: GoalBuilder, cursors: List[_RankCursor]) -> bool:
        """Emit every collective on which all communicator members are blocked."""
        trace = self.trace
        # (comm, seq, call) -> list of ranks blocked on it
        blocked: Dict[Tuple[int, int, str], List[int]] = {}
        for rank in range(trace.num_ranks):
            cursor = cursors[rank]
            if cursor.index >= len(trace.events[rank]):
                continue
            event = trace.events[rank][cursor.index]
            if event.call in COLLECTIVE_CALLS:
                blocked.setdefault((event.comm, event.seq, event.call), []).append(rank)

        emitted = False
        for (comm, seq, call), ranks_blocked in sorted(blocked.items()):
            members = trace.communicators.get(comm)
            if members is None:
                raise TraceMismatchError(f"event references unknown communicator {comm}")
            if sorted(ranks_blocked) != sorted(members):
                continue  # not everyone has arrived yet
            self._emit_collective(builder, cursors, comm, members, call)
            emitted = True
        return emitted

    def _emit_collective(
        self,
        builder: GoalBuilder,
        cursors: List[_RankCursor],
        comm: int,
        members: List[int],
        call: str,
    ) -> None:
        events = {rank: self.trace.events[rank][cursors[rank].index] for rank in members}
        # all members must agree on size/root; use the root's (or first member's) view
        sample = events[members[0]]
        deps = {
            rank: cursors[rank].last_handle
            for rank in members
            if cursors[rank].last_handle is not None
        }
        ctx = CollectiveContext(
            builder,
            members,
            tags=self.tags,
            reduce_ns_per_byte=self.reduce_ns_per_byte,
            groups=self._comm_groups(members),
        )
        exits = self._dispatch_collective(ctx, call, sample, deps)
        for rank in members:
            cursor = cursors[rank]
            if rank in exits:
                cursor.last_handle = exits[rank]
            cursor.prev_end_ns = events[rank].end_ns
            cursor.index += 1
            cursor.blocked_gap_emitted = False

    def _comm_groups(self, members: List[int]) -> Optional[List[List[int]]]:
        """Locality groups of one communicator (see ``project_groups``)."""
        if self.groups is None:
            return None
        return project_groups(self.groups, members)

    def _resolve(self, collective: str, algo: str, ctx: CollectiveContext, size: int) -> str:
        """Resolve an ``algorithms`` entry, expanding ``"auto"`` via the autotuner."""
        if algo != "auto":
            return algo
        return select_algorithm(
            collective,
            size,
            ctx.size,
            params=self.select_params,
            topology=self.topology,
            groups=ctx.groups,
        ).name

    def _dispatch_collective(self, ctx: CollectiveContext, call: str, event: MpiEvent, deps) -> Dict[int, int]:
        size = max(1, event.size)
        algo = self.algorithms.get(call, "")
        if call == "MPI_Allreduce":
            algo = self._resolve("allreduce", algo, ctx, size)
            if algo == "ring" and size < ALLREDUCE_RD_THRESHOLD:
                return calgs.recursive_doubling_allreduce(ctx, size, deps)
            return get_algorithm("allreduce", algo).emit(ctx, size, deps)
        if call == "MPI_Bcast":
            root = ctx.ranks.index(event.root) if event.root in ctx.ranks else 0
            algo = self._resolve("bcast", algo, ctx, size)
            return get_algorithm("bcast", algo).emit(ctx, size, deps, root=root)
        if call == "MPI_Reduce":
            root = ctx.ranks.index(event.root) if event.root in ctx.ranks else 0
            return calgs.binomial_reduce(ctx, size, root=root, deps=deps)
        if call == "MPI_Barrier":
            algo = self._resolve("barrier", algo, ctx, 1)
            return get_algorithm("barrier", algo).emit(ctx, 1, deps)
        if call == "MPI_Allgather":
            # the traced size is each rank's contribution; registry
            # algorithms take the gathered total
            algo = self._resolve("allgather", algo, ctx, size * ctx.size)
            return get_algorithm("allgather", algo).emit(ctx, size * ctx.size, deps)
        if call == "MPI_Alltoall":
            algo = self._resolve("alltoall", algo, ctx, size)
            return get_algorithm("alltoall", algo).emit(ctx, size, deps)
        if call == "MPI_Gather":
            # single registered decomposition (linear); kept off the
            # registry until an alternative exists
            root = ctx.ranks.index(event.root) if event.root in ctx.ranks else 0
            return calgs.linear_gather(ctx, size, root=root, deps=deps)
        if call == "MPI_Scatter":
            root = ctx.ranks.index(event.root) if event.root in ctx.ranks else 0
            return calgs.linear_scatter(ctx, size, root=root, deps=deps)
        if call == "MPI_Reduce_scatter":
            algo = self._resolve("reduce_scatter", algo, ctx, size)
            return get_algorithm("reduce_scatter", algo).emit(ctx, size, deps)
        raise ValueError(f"unsupported collective {call}")


def mpi_trace_to_goal(
    trace: MpiTrace,
    algorithms: Optional[Dict[str, str]] = None,
    compute_scale: float = 1.0,
    reduce_ns_per_byte: float = 0.0,
    name: Optional[str] = None,
    groups: Optional[List[List[int]]] = None,
    topology=None,
    placement: Optional[Dict[int, int]] = None,
    select_params=None,
) -> GoalSchedule:
    """Convenience wrapper around :class:`MpiScheduleGenerator`."""
    return MpiScheduleGenerator(
        trace,
        algorithms=algorithms,
        compute_scale=compute_scale,
        reduce_ns_per_byte=reduce_ns_per_byte,
        groups=groups,
        topology=topology,
        placement=placement,
        select_params=select_params,
    ).generate(name=name)

"""Comparison baselines used in the paper's evaluation."""

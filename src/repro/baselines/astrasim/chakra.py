"""Chakra-ET-like execution trace format.

Chakra execution traces (used by AstraSim) describe each GPU's work as a
graph of typed nodes — compute nodes, collective-communication nodes and
point-to-point send/recv nodes — each carrying explicit data dependencies
and a bag of per-node attributes (tensor shapes, kernel metadata, framework
annotations).  That per-node metadata is the reason Chakra traces are
consistently larger than GOAL binaries in the paper's Fig. 9; the stand-in
format below reproduces the structure (and, deliberately, the verbosity) of
the JSON flavour of Chakra.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.tracers.nccl import NsysReport

COMP_NODE = "COMP_NODE"
COMM_COLL_NODE = "COMM_COLL_NODE"
COMM_SEND_NODE = "COMM_SEND_NODE"
COMM_RECV_NODE = "COMM_RECV_NODE"

#: Chakra names of the collective communication types.
COLL_TYPES = {
    "AllReduce": "ALL_REDUCE",
    "AllGather": "ALL_GATHER",
    "ReduceScatter": "REDUCE_SCATTER",
    "Broadcast": "BROADCAST",
    "AllToAll": "ALL_TO_ALL",
}


@dataclass
class ChakraNode:
    """One node of a per-GPU Chakra graph."""

    node_id: int
    name: str
    node_type: str
    duration_us: float = 0.0
    comm_size: int = 0
    comm_type: Optional[str] = None
    comm_group: Optional[int] = None
    comm_peer: Optional[int] = None
    data_deps: List[int] = field(default_factory=list)
    attrs: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.node_id,
            "name": self.name,
            "type": self.node_type,
            "duration_micros": self.duration_us,
            "comm_size": self.comm_size,
            "comm_type": self.comm_type,
            "comm_group": self.comm_group,
            "comm_peer": self.comm_peer,
            "data_deps": list(self.data_deps),
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ChakraNode":
        return cls(
            node_id=int(d["id"]),
            name=str(d["name"]),
            node_type=str(d["type"]),
            duration_us=float(d.get("duration_micros", 0.0)),
            comm_size=int(d.get("comm_size", 0)),
            comm_type=d.get("comm_type"),
            comm_group=d.get("comm_group"),
            comm_peer=d.get("comm_peer"),
            data_deps=list(d.get("data_deps", [])),
            attrs=dict(d.get("attrs", {})),
        )


@dataclass
class ChakraTrace:
    """A Chakra-like execution trace: one node graph per GPU."""

    num_gpus: int
    name: str = "chakra"
    graphs: List[List[ChakraNode]] = field(default_factory=list)
    comm_groups: Dict[int, List[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        if not self.graphs:
            self.graphs = [[] for _ in range(self.num_gpus)]
        if len(self.graphs) != self.num_gpus:
            raise ValueError("need one node graph per GPU")
        self.comm_groups.setdefault(0, list(range(self.num_gpus)))

    def num_nodes(self) -> int:
        return sum(len(g) for g in self.graphs)

    def has_p2p(self) -> bool:
        """True when any GPU graph contains point-to-point nodes (pipeline traffic)."""
        return any(
            node.node_type in (COMM_SEND_NODE, COMM_RECV_NODE)
            for graph in self.graphs
            for node in graph
        )

    # ------------------------------------------------------------- serialisation
    def to_json(self) -> str:
        payload = {
            "schema": "chakra-like-et",
            "name": self.name,
            "num_gpus": self.num_gpus,
            "comm_groups": {str(k): v for k, v in self.comm_groups.items()},
            "graphs": [[node.to_dict() for node in graph] for graph in self.graphs],
        }
        return json.dumps(payload, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "ChakraTrace":
        payload = json.loads(text)
        trace = cls(num_gpus=int(payload["num_gpus"]), name=payload.get("name", "chakra"))
        trace.comm_groups = {int(k): v for k, v in payload.get("comm_groups", {}).items()}
        trace.comm_groups.setdefault(0, list(range(trace.num_gpus)))
        trace.graphs = [
            [ChakraNode.from_dict(d) for d in graph] for graph in payload["graphs"]
        ]
        return trace

    def to_file(self, path: str) -> int:
        data = self.to_json().encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(data)
        return len(data)

    @classmethod
    def from_file(cls, path: str) -> "ChakraTrace":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def size_bytes(self) -> int:
        """Size of the serialisation (the Fig. 9 comparison quantity)."""
        return len(self.to_json().encode("utf-8"))


def nsys_to_chakra(report: NsysReport, name: Optional[str] = None) -> ChakraTrace:
    """Convert an nsys-like NCCL trace into the Chakra-like format.

    This plays the role of the PyTorch/Kineto → Chakra ET conversion used to
    feed AstraSim in the paper's evaluation, so both simulators consume the
    same underlying execution.
    """
    trace = ChakraTrace(num_gpus=report.num_gpus, name=name or report.name)
    trace.comm_groups = {k: list(v) for k, v in report.communicators.items()}

    for gpu in range(report.num_gpus):
        nodes: List[ChakraNode] = []
        next_id = 0
        last_per_stream: Dict[int, int] = {}
        # walk kernels of all streams in global time order, keeping per-stream chains
        all_kernels = []
        for stream_id, stream in report.streams[gpu].items():
            prev_end = 0
            for k in stream.kernels:
                all_kernels.append((k.start_ns, stream_id, k, prev_end))
                prev_end = k.end_ns
        all_kernels.sort(key=lambda item: (item[0], item[1]))

        for start_ns, stream_id, kernel, prev_end in all_kernels:
            deps = [last_per_stream[stream_id]] if stream_id in last_per_stream else []
            gap_us = max(0.0, (kernel.start_ns - prev_end) / 1000.0)
            if gap_us > 0:
                gap_node = ChakraNode(
                    node_id=next_id,
                    name="inferred_host_compute",
                    node_type=COMP_NODE,
                    duration_us=gap_us,
                    data_deps=deps,
                    attrs={"stream": stream_id, "inferred": True},
                )
                nodes.append(gap_node)
                deps = [next_id]
                next_id += 1
            if kernel.kind == "compute":
                node = ChakraNode(
                    node_id=next_id,
                    name=kernel.name,
                    node_type=COMP_NODE,
                    duration_us=(kernel.end_ns - kernel.start_ns) / 1000.0,
                    data_deps=deps,
                    attrs={
                        "stream": stream_id,
                        "kernel": kernel.name,
                        "grid": [128, 1, 1],
                        "block": [256, 1, 1],
                        "framework": "pytorch",
                    },
                )
            elif kernel.op in ("Send", "Recv"):
                node = ChakraNode(
                    node_id=next_id,
                    name=f"nccl{kernel.op}",
                    node_type=COMM_SEND_NODE if kernel.op == "Send" else COMM_RECV_NODE,
                    comm_size=kernel.size,
                    comm_peer=kernel.peer,
                    data_deps=deps,
                    attrs={"stream": stream_id, "protocol": "Simple"},
                )
            else:
                node = ChakraNode(
                    node_id=next_id,
                    name=f"nccl{kernel.op}",
                    node_type=COMM_COLL_NODE,
                    comm_size=kernel.size,
                    comm_type=COLL_TYPES.get(kernel.op, kernel.op),
                    comm_group=kernel.comm,
                    data_deps=deps,
                    attrs={"stream": stream_id, "seq": kernel.seq, "algorithm": "auto"},
                )
            nodes.append(node)
            last_per_stream[stream_id] = next_id
            next_id += 1
        trace.graphs[gpu] = nodes
    return trace

"""AstraSim-like baseline: Chakra-style traces + a congestion-unaware simulator.

The paper compares ATLAHS against AstraSim 2.0 (its accuracy, its simulation
runtime, and the size of its Chakra execution traces).  This package provides
a faithful-in-spirit stand-in built from scratch:

* :mod:`repro.baselines.astrasim.chakra` — a Chakra-ET-like node-based trace
  format (verbose JSON, per-GPU node graphs with explicit dependencies and
  per-node metadata), plus a converter from the nsys-like NCCL traces,
* :mod:`repro.baselines.astrasim.simulator` — a congestion-unaware analytical
  backend replaying Chakra traces, including the baseline's documented
  limitation of only supporting data-parallel-style traces (it rejects traces
  containing point-to-point pipeline traffic with the same "src and dest have
  the same address" failure reported in the paper's Fig. 8).
"""
from repro.baselines.astrasim.chakra import ChakraNode, ChakraTrace, nsys_to_chakra
from repro.baselines.astrasim.simulator import AstraSimBaseline, AstraSimUnsupportedError

__all__ = [
    "ChakraNode",
    "ChakraTrace",
    "nsys_to_chakra",
    "AstraSimBaseline",
    "AstraSimUnsupportedError",
]

"""Congestion-unaware AstraSim-like simulator over Chakra-like traces.

The baseline replays each GPU's Chakra node graph under an analytical
(alpha-beta) network model without congestion: every collective is expanded
into its per-chunk ring phases and charged latency + size/bandwidth per
phase, with a global synchronisation point per collective (all members must
reach it before it proceeds) — the behaviour of AstraSim's
"congestion-unaware" backend used for the paper's Fig. 8 comparison.

Two documented properties of the real baseline are reproduced:

* traces containing point-to-point pipeline traffic are rejected with the
  same ``src and dest have the same address`` error reported in the paper
  (AstraSim's real-trace support is effectively limited to data-parallel
  workloads),
* the simulator is an *event-per-chunk* design that performs noticeably more
  work per collective than ATLAHS's message-level replay, which is what the
  runtime comparison of §5.2 measures.
"""
from __future__ import annotations

import heapq
import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines.astrasim.chakra import (
    COMM_COLL_NODE,
    COMM_RECV_NODE,
    COMM_SEND_NODE,
    COMP_NODE,
    ChakraNode,
    ChakraTrace,
)


class AstraSimUnsupportedError(RuntimeError):
    """Raised for trace features the baseline cannot execute."""


@dataclass
class AstraSimConfig:
    """Analytical network model of the baseline (alpha-beta, no congestion)."""

    link_latency_ns: int = 3700
    bandwidth_bytes_per_ns: float = 25.0
    chunk_bytes: int = 64 * 1024
    host_overhead_ns: int = 200

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_ns <= 0 or self.chunk_bytes <= 0:
            raise ValueError("bandwidth and chunk_bytes must be positive")


@dataclass
class AstraSimResult:
    """Result of one baseline simulation."""

    finish_time_ns: int
    gpu_finish_times_ns: List[int]
    nodes_executed: int
    wall_clock_s: float

    @property
    def finish_time_s(self) -> float:
        return self.finish_time_ns / 1e9


class AstraSimBaseline:
    """Replays a :class:`ChakraTrace` under the congestion-unaware model."""

    name = "astrasim-congestion-unaware"

    def __init__(self, config: Optional[AstraSimConfig] = None) -> None:
        self.config = config or AstraSimConfig()

    # ------------------------------------------------------------------ public
    def simulate(self, trace: ChakraTrace) -> AstraSimResult:
        """Run the trace to completion and return per-GPU finish times."""
        if trace.has_p2p():
            # The real baseline fails on pipeline-parallel traces; reproduce the
            # reported failure mode instead of silently mis-simulating.
            raise AstraSimUnsupportedError("src and dest have the same address")

        wall_start = _time.perf_counter()
        config = self.config

        # Per-GPU ready-node scheduling with a global event heap; collectives
        # synchronise all members of their communication group.
        num_gpus = trace.num_gpus
        indegree: List[Dict[int, int]] = []
        successors: List[Dict[int, List[int]]] = []
        for gpu in range(num_gpus):
            nodes = trace.graphs[gpu]
            ind: Dict[int, int] = {}
            succ: Dict[int, List[int]] = {}
            for node in nodes:
                ind[node.node_id] = len(node.data_deps)
                for dep in node.data_deps:
                    succ.setdefault(dep, []).append(node.node_id)
            indegree.append(ind)
            successors.append(succ)

        node_by_id: List[Dict[int, ChakraNode]] = [
            {node.node_id: node for node in trace.graphs[gpu]} for gpu in range(num_gpus)
        ]

        # collective rendezvous: (comm_group, per-group arrival counter keyed by
        # how many collectives that gpu has already issued on the group)
        coll_arrivals: Dict[Tuple[int, int], List[Tuple[int, int, int]]] = {}
        coll_counter: List[Dict[int, int]] = [dict() for _ in range(num_gpus)]

        heap: List[Tuple[int, int, int, int]] = []  # (time, seq, gpu, node_id)
        seq = 0
        gpu_time = [0] * num_gpus
        executed = 0

        def push_ready(gpu: int, node_id: int, at_time: int) -> None:
            nonlocal seq
            heapq.heappush(heap, (at_time, seq, gpu, node_id))
            seq += 1

        for gpu in range(num_gpus):
            for node in trace.graphs[gpu]:
                if indegree[gpu][node.node_id] == 0:
                    push_ready(gpu, node.node_id, 0)

        def complete(gpu: int, node_id: int, at_time: int) -> None:
            nonlocal executed
            executed += 1
            gpu_time[gpu] = max(gpu_time[gpu], at_time)
            for succ_id in successors[gpu].get(node_id, ()):  # unlock successors
                indegree[gpu][succ_id] -= 1
                if indegree[gpu][succ_id] == 0:
                    push_ready(gpu, succ_id, at_time)

        while heap:
            now, _, gpu, node_id = heapq.heappop(heap)
            node = node_by_id[gpu][node_id]
            if node.node_type == COMP_NODE:
                finish = now + int(round(node.duration_us * 1000.0))
                complete(gpu, node_id, finish)
            elif node.node_type == COMM_COLL_NODE:
                group = node.comm_group if node.comm_group is not None else 0
                members = trace.comm_groups.get(group, list(range(num_gpus)))
                count = coll_counter[gpu].get(group, 0)
                coll_counter[gpu][group] = count + 1
                key = (group, count)
                coll_arrivals.setdefault(key, []).append((now, gpu, node_id))
                if len(coll_arrivals[key]) == len(members):
                    start = max(t for t, _, _ in coll_arrivals[key])
                    duration = self._collective_duration(node, len(members))
                    finish = start + duration
                    for _, member_gpu, member_node in coll_arrivals[key]:
                        complete(member_gpu, member_node, finish)
                    del coll_arrivals[key]
            else:  # pragma: no cover - rejected earlier
                raise AstraSimUnsupportedError("src and dest have the same address")

        wall = _time.perf_counter() - wall_start
        if coll_arrivals:
            raise AstraSimUnsupportedError(
                "collective operations do not line up across the communication group"
            )
        return AstraSimResult(
            finish_time_ns=max(gpu_time, default=0),
            gpu_finish_times_ns=gpu_time,
            nodes_executed=executed,
            wall_clock_s=wall,
        )

    # --------------------------------------------------------------- internals
    def _collective_duration(self, node: ChakraNode, group_size: int) -> int:
        """Alpha-beta duration of one collective, accumulated chunk by chunk.

        The per-chunk loop mirrors AstraSim's chunk-granular simulation of
        collective phases (and is what makes the baseline measurably slower
        than ATLAHS's message-level replay for the same workload).
        """
        cfg = self.config
        size = max(1, node.comm_size)
        if group_size <= 1:
            return cfg.host_overhead_ns
        comm_type = node.comm_type or "ALL_REDUCE"
        if comm_type == "ALL_REDUCE":
            phases = 2 * (group_size - 1)
            phase_bytes = size / group_size
        elif comm_type in ("ALL_GATHER", "REDUCE_SCATTER"):
            phases = group_size - 1
            phase_bytes = size / group_size
        elif comm_type == "BROADCAST":
            phases = group_size - 1
            phase_bytes = size
        else:  # ALL_TO_ALL
            phases = group_size - 1
            phase_bytes = size
        total = 0.0
        for _ in range(phases):
            remaining = phase_bytes
            while remaining > 0:
                chunk = min(cfg.chunk_bytes, remaining)
                total += cfg.link_latency_ns + chunk / cfg.bandwidth_bytes_per_ns
                remaining -= chunk
        total += 2 * cfg.host_overhead_ns
        return int(round(total))

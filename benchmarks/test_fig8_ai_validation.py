"""Fig. 8: AI training — measured runtime vs ATLAHS LGS / htsim / AstraSim.

For each scaled-down training configuration the harness produces a reference
("measured") runtime with the measurement harness and compares the
predictions of ATLAHS-LGS, ATLAHS-htsim and the AstraSim-like baseline,
printing the per-backend prediction error (the red percentages of Fig. 8).
Configurations with pipeline/expert parallelism reproduce the baseline's
"src and dest have the same address" failure.
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.baselines.astrasim import AstraSimBaseline, AstraSimUnsupportedError, nsys_to_chakra
from repro.apps.ai import LlmTrainer
from repro.measurement import measure_reference_runtime, prediction_error
from repro.network import LogGOPSParams, SimulationConfig
from repro.schedgen import nccl_trace_to_goal
from repro.scheduler import simulate

ITERATIONS = 1


def _lgs_config():
    return SimulationConfig(loggops=LogGOPSParams(L=1500, o=200, g=5, G=0.04, O=0.0, S=0))


def _packet_config():
    return SimulationConfig(
        topology="fat_tree", nodes_per_tor=4, oversubscription=1.0, link_latency=500, host_overhead=200
    )


def test_fig8_ai_validation(benchmark, small_ai_workloads):
    def run_all():
        rows = []
        errors = []
        for label, model, par, gpus_per_node in small_ai_workloads:
            trainer = LlmTrainer(model, par, gpus_per_node=gpus_per_node, iterations=ITERATIONS)
            report = trainer.trace()
            schedule = nccl_trace_to_goal(report, gpus_per_node=gpus_per_node)

            measured = measure_reference_runtime(schedule, base_config=_packet_config(), trials=2)
            t_lgs = simulate(schedule, backend="lgs", config=_lgs_config()).finish_time_ns
            t_pkt = simulate(schedule, backend="htsim", config=_packet_config()).finish_time_ns

            err_lgs = prediction_error(t_lgs, measured.runtime_ns)
            err_pkt = prediction_error(t_pkt, measured.runtime_ns)
            errors.append((label, err_lgs, err_pkt))

            try:
                astra = AstraSimBaseline().simulate(nsys_to_chakra(report))
                astra_cell = f"{prediction_error(astra.finish_time_ns, measured.runtime_ns) * 100:+.1f}%"
            except AstraSimUnsupportedError as exc:
                astra_cell = f"failed: {exc}"

            rows.append(
                (
                    label,
                    f"{measured.compute_fraction * 100:.0f}%",
                    f"{measured.runtime_ns / 1e6:.2f} ms",
                    f"{err_lgs * 100:+.1f}%",
                    f"{err_pkt * 100:+.1f}%",
                    astra_cell,
                )
            )
        return rows, errors

    rows, errors = run_once(benchmark, run_all)
    print_table(
        "Fig. 8  AI validation (prediction error vs reference measurement)",
        ["workload", "compute %", "measured", "ATLAHS LGS err", "ATLAHS htsim err", "AstraSim"],
        rows,
    )

    # shape: both ATLAHS backends stay within a modest error envelope (the
    # paper reports <5% against real hardware; the scaled-down reference
    # allows a wider but still tight band)
    for label, err_lgs, err_pkt in errors:
        assert abs(err_pkt) < 0.15, f"{label}: packet-backend error {err_pkt:+.1%}"
        assert abs(err_lgs) < 0.30, f"{label}: LGS error {err_lgs:+.1%}"

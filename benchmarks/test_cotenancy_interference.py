"""Co-tenancy interference benchmark (Fig. 13 generalised).

Two communication-heavy jobs (all-to-all fronts) share a 4:1 oversubscribed
fat tree through the multi-job co-tenancy engine.  The harness sweeps the
placement strategy (packed vs fragmented vs random) with the packet backend
and reports, per job, the *attributed* slowdown — co-tenant runtime over an
isolated run of the same job under the same placement, i.e. pure cross-job
contention with locality held constant — plus how many links each job
shares with the other.

Shape assertions: a packed allocation keeps the jobs on disjoint ToRs (no
contended links, slowdown ~1), while a fragmented allocation forces both
jobs through the oversubscribed core, producing measurable per-job slowdown
attributed to specific shared links.
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.cluster import ClusterJob, run_cotenant
from repro.network import SimulationConfig
from repro.schedgen import all_to_all
from repro.sweep import interference_sweep

CLUSTER_NODES = 16
RANKS_PER_JOB = 8
MESSAGE_SIZE = 1 << 18


def _jobs():
    return [
        ClusterJob(all_to_all(RANKS_PER_JOB, MESSAGE_SIZE), name="jobA"),
        ClusterJob(all_to_all(RANKS_PER_JOB, MESSAGE_SIZE), name="jobB"),
    ]


def _config():
    return SimulationConfig(
        topology="fat_tree", nodes_per_tor=4, oversubscription=4.0,
        cc_algorithm="mprdma", seed=7,
    )


def test_cotenancy_interference(benchmark):
    jobs = _jobs()

    def run_sweep():
        return interference_sweep(
            jobs,
            CLUSTER_NODES,
            strategies=("packed", "fragmented", "random"),
            configs={"ft_4to1": _config()},
            backend="htsim",
            seed=3,
            group_size=4,
        )

    entries = run_once(benchmark, run_sweep)
    rows = [
        (
            e.strategy,
            e.job,
            f"{e.runtime_ms:.3f} ms",
            f"{e.slowdown:.2f}x",
            e.contended_link_count,
        )
        for e in entries
    ]
    print_table(
        "Co-tenancy interference  2 x alltoall (4:1 oversubscribed fat tree)",
        ["placement", "job", "runtime", "slowdown", "contended links"],
        rows,
    )

    by_strategy = {}
    for e in entries:
        by_strategy.setdefault(e.strategy, []).append(e)

    # packed keeps the jobs on disjoint ToRs: no shared links, no slowdown
    for e in by_strategy["packed"]:
        assert e.contended_link_count == 0
        assert e.slowdown == pytest.approx(1.0, abs=0.02)

    # fragmented drives both jobs through the shared core: every job pays a
    # measurable, attributed slowdown over specific contended links
    for e in by_strategy["fragmented"]:
        assert e.contended_link_count > 0
        assert e.slowdown > 1.15
        packed_twin = next(p for p in by_strategy["packed"] if p.job == e.job)
        assert e.slowdown > packed_twin.slowdown + 0.1


def test_cotenancy_contended_link_attribution():
    """The per-link breakdown names the shared links and both jobs' shares."""
    res = run_cotenant(
        _jobs(),
        CLUSTER_NODES,
        strategy="fragmented",
        backend="htsim",
        config=_config(),
        group_size=4,
    )
    contended = res.contended_links()
    assert contended, "fragmented placement must share links between the jobs"
    # every contended link names both jobs with non-zero byte shares
    for link, per_job in contended.items():
        assert set(per_job) == {"jobA", "jobB"}
        assert all(byts > 0 for byts in per_job.values())
    # attribution is conserved: each job's total link bytes match its stats
    for out in res.outcomes:
        assert out.messages_delivered == RANKS_PER_JOB * (RANKS_PER_JOB - 1)
        assert out.bytes_delivered == out.messages_delivered * MESSAGE_SIZE

"""Topology x routing sweep on the Fig. 12-style oversubscribed workload.

The paper's Fig. 12 contrasts the backends on a fat tree with and without
oversubscription; this harness extends that axis across the full topology
zoo (fat tree, dragonfly, torus, Slim Fly) and the pluggable routing
strategies (minimal/ECMP, Valiant, UGAL-style adaptive), using the same
Llama-like training trace.  For every cell it reports the packet backend's
predicted runtime plus the congestion signals (drops, ECN marks, peak queue)
that distinguish the fabrics.
"""
from __future__ import annotations

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.network import SimulationConfig
from repro.schedgen import nccl_trace_to_goal
from repro.sweep import default_topology_configs, topology_routing_sweep

ROUTINGS = ("minimal", "valiant", "adaptive")


def _schedule():
    model = llama_7b().scaled(0.03)
    par = ParallelismConfig(tp=1, pp=1, dp=8, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=1, iterations=1).trace()
    return nccl_trace_to_goal(report, gpus_per_node=1)


def test_topology_routing_sweep(benchmark):
    schedule = _schedule()
    base = SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=4,
        oversubscription=4.0,
        buffer_size=1 << 17,
        seed=5,
    )
    configs = default_topology_configs(schedule.num_ranks, base)

    entries = run_once(
        benchmark,
        lambda: topology_routing_sweep(schedule, configs, routings=ROUTINGS, backend="htsim"),
    )

    rows = [
        (
            e.topology,
            e.routing,
            f"{e.finish_time_ms:.2f} ms",
            e.packets_dropped,
            e.packets_ecn_marked,
            f"{e.max_queue_bytes >> 10} KiB",
        )
        for e in entries
    ]
    print_table(
        "Topology x routing sweep (Fig. 12-style oversubscribed LLM workload, htsim)",
        ["topology", "routing", "runtime", "drops", "ECN marks", "peak queue"],
        rows,
    )

    by_cell = {(e.topology, e.routing): e for e in entries}
    assert len(entries) == len(configs) * len(ROUTINGS)
    # every cell simulates the whole schedule
    expected_msgs = entries[0].messages_delivered
    assert expected_msgs > 0
    assert all(e.messages_delivered == expected_msgs for e in entries)
    assert all(e.finish_time_ns > 0 for e in entries)
    # the 4:1 oversubscribed fat tree shows congestion that minimal routing
    # cannot avoid (the signal Fig. 12's right panel reports)
    ft_min = by_cell[("fat_tree", "minimal")]
    assert ft_min.packets_dropped + ft_min.packets_ecn_marked > 0
    # on the torus, valiant's longer paths are visible when idle capacity
    # exists, while adaptive stays within a small factor of minimal
    assert by_cell[("torus", "valiant")].finish_time_ns >= by_cell[("torus", "minimal")].finish_time_ns * 0.95

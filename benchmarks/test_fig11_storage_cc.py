"""Fig. 11: effect of congestion control on distributed-storage request MCT.

Replays a Financial-distribution-like block-I/O workload against the Direct
Drive model on two fat trees (fully provisioned and 8:1 oversubscribed) under
MPRDMA (sender-based) and NDP (receiver-based), and prints the mean / 99th
percentile / max message completion times — the bars of Fig. 11.  The paper's
qualitative finding is that the two algorithms are equivalent on the fully
provisioned fabric while NDP degrades under ToR→core oversubscription.
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.core import Atlahs
from repro.network import SimulationConfig
from repro.schedgen.storage import DirectDriveConfig
from repro.tracers.storage import FinancialWorkloadGenerator

NUM_OPERATIONS = 1500  # paper: 5k; scaled down for pure-Python packet simulation


def _config(oversubscription: float, cc: str) -> SimulationConfig:
    return SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=8,
        oversubscription=oversubscription,
        cc_algorithm=cc,
        buffer_size=1 << 18,
        seed=3,
    )


def test_fig11_storage_mct(benchmark):
    trace = FinancialWorkloadGenerator(seed=7, mean_size_bytes=16384).generate(NUM_OPERATIONS)
    direct_drive = DirectDriveConfig(num_clients=4, num_ccs=4, num_bss=8, timescale=0.005)
    atlahs = Atlahs()

    def run_all():
        results = {}
        for oversub, label in ((1.0, "no oversubscription"), (8.0, "8:1 oversubscription")):
            for cc in ("mprdma", "ndp"):
                out = atlahs.run_storage(trace, direct_drive, backend="htsim", config=_config(oversub, cc))
                results[(label, cc)] = (out.result.mct_statistics(), out.result.stats)
        return results

    results = run_once(benchmark, run_all)
    rows = []
    for (label, cc), (mct, stats) in results.items():
        rows.append(
            (
                label,
                cc.upper(),
                f"{mct['mean'] / 1e3:.1f}",
                f"{mct['p99'] / 1e3:.1f}",
                f"{mct['max'] / 1e3:.1f}",
                stats.packets_dropped,
                stats.packets_trimmed,
            )
        )
    print_table(
        "Fig. 11  storage MCT under different congestion control (us)",
        ["topology", "CC", "mean", "p99", "max", "drops", "trims"],
        rows,
    )

    mct_full_mprdma = results[("no oversubscription", "mprdma")][0]
    mct_full_ndp = results[("no oversubscription", "ndp")][0]
    mct_over_mprdma = results[("8:1 oversubscription", "mprdma")][0]
    mct_over_ndp = results[("8:1 oversubscription", "ndp")][0]

    # shape 1: on the fully provisioned fabric both algorithms are comparable
    assert abs(mct_full_ndp["mean"] - mct_full_mprdma["mean"]) / mct_full_mprdma["mean"] < 0.10
    # shape 2: oversubscription hurts, and it hurts NDP at least as much.
    # NDP's p99 is dominated by trim/retransmit interleavings and jumps
    # across equally-valid event orderings, so degradation is asserted on
    # the mean and on the slowdown relative to the fully provisioned
    # fabric rather than on a raw p99 comparison.
    assert mct_over_mprdma["p99"] > mct_full_mprdma["p99"]
    assert mct_over_ndp["mean"] >= mct_over_mprdma["mean"] * 0.95
    ndp_slowdown = mct_over_ndp["mean"] / mct_full_ndp["mean"]
    mprdma_slowdown = mct_over_mprdma["mean"] / mct_full_mprdma["mean"]
    assert ndp_slowdown >= mprdma_slowdown * 0.95

"""Table 1: raw trace sizes vs compact GOAL sizes across applications.

Regenerates the released-trace summary at laptop scale: for each application
and configuration the harness produces the raw trace (nsys-like JSON for AI,
liballprof text for HPC, SPC text for storage) and the binary GOAL file, and
prints both sizes.  Absolute sizes are far smaller than the paper's (the
workloads are scaled down), but the relationship between trace and GOAL sizes
per domain is the comparable quantity.
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import DlrmTrainer, LlmTrainer, ParallelismConfig, llama_7b, mistral_8x7b
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.goal import encode_goal
from repro.schedgen import mpi_trace_to_goal, nccl_trace_to_goal, storage_trace_to_goal
from repro.schedgen.storage import DirectDriveConfig
from repro.tracers.storage import FinancialWorkloadGenerator


def _ai_entries():
    entries = []
    dlrm = DlrmTrainer(num_gpus=8, gpus_per_node=4, iterations=1)
    entries.append(("DLRM", "8 GPUs 2 Nodes", dlrm.trace()))
    llama = LlmTrainer(
        llama_7b().scaled(0.04),
        ParallelismConfig(dp=16, microbatches=2, global_batch=32),
        gpus_per_node=4,
        iterations=1,
    )
    entries.append(("Llama 7B", "16 GPUs 4 Nodes", llama.trace()))
    moe = LlmTrainer(
        mistral_8x7b().scaled(0.03),
        ParallelismConfig(pp=2, dp=8, ep=2, microbatches=2, global_batch=32),
        gpus_per_node=4,
        iterations=1,
    )
    entries.append(("MoE (Mistral) 8x7B", "16 GPUs 4 Nodes", moe.trace()))
    return entries


def _hpc_entries():
    entries = []
    for name, ranks in (("cloverleaf", 8), ("hpcg", 16), ("lulesh", 8), ("lammps", 16), ("icon", 16), ("openmx", 8)):
        cfg = HpcRunConfig(num_ranks=ranks, iterations=3, cells_per_rank=8000)
        entries.append((name.upper() if name != "cloverleaf" else "CloverLeaf", f"{ranks} procs", HPC_APPLICATIONS[name].trace(cfg)))
    return entries


def test_table1_trace_and_goal_sizes(benchmark):
    def build():
        rows = []
        for label, config, report in _ai_entries():
            goal = nccl_trace_to_goal(report, gpus_per_node=report.gpus_per_node)
            rows.append((label, config, report.size_bytes(), len(encode_goal(goal))))
        for label, config, trace in _hpc_entries():
            goal = mpi_trace_to_goal(trace)
            rows.append((label, config, trace.size_bytes(), len(encode_goal(goal))))
        storage = FinancialWorkloadGenerator(seed=1).generate(500)
        goal = storage_trace_to_goal(storage, DirectDriveConfig())
        rows.append(("Storage (Financial-like)", "500 ops", storage.size_bytes(), len(encode_goal(goal))))
        return rows

    rows = run_once(benchmark, build)
    print_table(
        "Table 1  trace vs GOAL sizes (scaled-down workloads)",
        ["application", "configuration", "trace (KiB)", "GOAL (KiB)", "GOAL/trace"],
        [
            (label, config, f"{t / 1024:.1f}", f"{g / 1024:.1f}", f"{g / t:.2f}x")
            for label, config, t, g in rows
        ],
    )

    # every workload must produce non-empty artefacts of plausible magnitude
    for label, _config, trace_bytes, goal_bytes in rows:
        assert trace_bytes > 0 and goal_bytes > 0
        assert goal_bytes < 50 * trace_bytes

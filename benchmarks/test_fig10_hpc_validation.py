"""Fig. 10: HPC applications — measured vs ATLAHS-predicted runtimes.

For every HPC application model at two scales (including a strong-scaling
point for HPCG, as in the paper) the harness compares the LGS and packet
backend predictions against the reference measurement and prints the
non-overlapped-compute fraction plus both prediction errors — the quantities
annotated on the bars of Fig. 10 (paper: errors consistently below 5%).
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.measurement import measure_reference_runtime, prediction_error
from repro.network import LogGOPSParams, SimulationConfig
from repro.schedgen import mpi_trace_to_goal
from repro.scheduler import simulate

WORKLOADS = [
    ("cloverleaf", 8, "weak"),
    ("hpcg", 8, "weak"),
    ("hpcg", 16, "strong"),
    ("lulesh", 8, "weak"),
    ("lammps", 16, "weak"),
    ("icon", 16, "weak"),
    ("openmx", 8, "weak"),
]


def _lgs_config():
    return SimulationConfig(loggops=LogGOPSParams(L=1500, o=200, g=5, G=0.04, O=0.0, S=256000))


def _reference_config():
    return SimulationConfig(topology="fat_tree", nodes_per_tor=8, oversubscription=1.0)


def test_fig10_hpc_validation(benchmark):
    def run_all():
        rows = []
        errors = []
        for app, ranks, scaling in WORKLOADS:
            run = HpcRunConfig(num_ranks=ranks, iterations=3, cells_per_rank=12_000, scaling=scaling)
            trace = HPC_APPLICATIONS[app].trace(run)
            schedule = mpi_trace_to_goal(trace)
            measured = measure_reference_runtime(schedule, base_config=_reference_config(), trials=2)
            t_lgs = simulate(schedule, backend="lgs", config=_lgs_config()).finish_time_ns
            t_pkt = simulate(schedule, backend="htsim", config=_reference_config().replace(seed=7)).finish_time_ns
            err_lgs = prediction_error(t_lgs, measured.runtime_ns)
            err_pkt = prediction_error(t_pkt, measured.runtime_ns)
            errors.append((app, err_lgs, err_pkt))
            rows.append(
                (
                    f"{app} ({ranks}/{scaling})",
                    f"{measured.compute_fraction * 100:.0f}%",
                    f"{measured.runtime_ns / 1e6:.2f} ms",
                    f"{err_lgs * 100:+.1f}%",
                    f"{err_pkt * 100:+.1f}%",
                )
            )
        return rows, errors

    rows, errors = run_once(benchmark, run_all)
    print_table(
        "Fig. 10  HPC validation (prediction error vs reference measurement)",
        ["application (ranks/scaling)", "compute %", "measured", "ATLAHS LGS err", "ATLAHS htsim err"],
        rows,
    )

    for app, err_lgs, err_pkt in errors:
        assert abs(err_pkt) < 0.10, f"{app}: packet-backend error {err_pkt:+.1%}"
        assert abs(err_lgs) < 0.25, f"{app}: LGS error {err_lgs:+.1%}"

"""Control-plane convergence figure: time-to-recover and blackhole loss.

The resilience benchmark (``test_fig_resilience.py``) assumes an *oracle*
control plane — every switch reroutes the instant a cable dies.  This
harness opens the convergence axis (:mod:`repro.network.control_plane`):
the same all-to-all workload replayed while a cable fails mid-run, under
link-state flooding (``ls``) and distance-vector (``dv``) route
advertisement, sweeping the advertisement propagation delay.

Two cells are measured:

* **4:1 fat tree, core-uplink failure** — the failed cable carries live
  traffic, so during the stale window packets vanish into black holes and
  loss-timeout retransmissions re-enter them until the source's ToR has
  learned the failure.  Blackhole counts must rise monotonically with the
  propagation delay; the oracle must report exactly zero (and identical
  runtimes at every delay — the delay knob must not touch oracle runs).
* **dragonfly, spare global-cable failure** — the dragonfly's minimal
  routing is single-path per host pair (one global cable per group pair),
  so failing any *used* cable partitions the fabric and the simulator
  raises, by design.  Failing a spare cable between the two unpopulated
  groups instead isolates the pure control-plane observables: the
  advertisement wave still crosses the whole switch graph, so
  time-to-recover scales with the propagation delay, distance-vector pays
  ~2x link-state (two exchange rounds per hop), and both backends must
  report bit-identical TTR and message counts (convergence timing is a
  property of the fabric, not of the traffic model).
"""
from __future__ import annotations

from benchmarks.conftest import print_table, run_once
from repro.network import FaultEvent, FaultSchedule, SimulationConfig
from repro.network.backend import create_backend
from repro.network.faults import LINK_DOWN
from repro.schedgen import all_to_all
from repro.scheduler import simulate

RANKS = 32
PROTOCOLS = ("oracle", "ls", "dv")
PROPAGATION_NS = (1_000, 50_000, 200_000)  # spans the 100 us loss timeout
FAULT_TIME_NS = 30_000
BACKENDS = ("lgs", "htsim")


def _fault(*link_names: str) -> FaultSchedule:
    return FaultSchedule(
        events=tuple(FaultEvent(FAULT_TIME_NS, LINK_DOWN, n) for n in link_names)
    )


def _run_grid(config: SimulationConfig):
    """{(backend, protocol, propagation): (finish, ttr, blackholed, messages)}."""
    schedule = all_to_all(RANKS, 1 << 16)
    cells = {}
    for backend_name in BACKENDS:
        for protocol in PROTOCOLS:
            for propagation_ns in PROPAGATION_NS:
                backend = create_backend(backend_name)
                result = simulate(
                    schedule,
                    backend=backend,
                    config=config.replace(
                        control_plane=protocol, cp_propagation_ns=propagation_ns
                    ),
                )
                cells[(backend_name, protocol, propagation_ns)] = (
                    result.finish_time_ns,
                    result.stats.time_to_recover_ns,
                    result.stats.packets_blackholed,
                    sum(r.messages for r in backend.convergence_report()),
                )
    return cells


def _print_grid(title: str, cells) -> None:
    print_table(
        title,
        ["backend", "protocol", "propagation", "runtime", "TTR", "blackholed", "messages"],
        [
            (
                backend,
                protocol,
                f"{propagation_ns} ns",
                f"{finish / 1e6:.3f} ms",
                f"{ttr} ns",
                blackholed,
                messages,
            )
            for (backend, protocol, propagation_ns), (
                finish,
                ttr,
                blackholed,
                messages,
            ) in sorted(cells.items())
        ],
    )


def _assert_convergence_invariants(cells) -> None:
    """Invariants shared by both topology cells."""
    for backend in BACKENDS:
        # the oracle converges instantly, at every propagation delay, and
        # the delay knob must not perturb its simulation at all
        oracle_finishes = {cells[(backend, "oracle", p)][0] for p in PROPAGATION_NS}
        assert len(oracle_finishes) == 1, (
            f"{backend}: oracle runtimes vary with propagation delay: {oracle_finishes}"
        )
        for propagation_ns in PROPAGATION_NS:
            _, ttr, blackholed, messages = cells[(backend, "oracle", propagation_ns)]
            assert ttr == 0 and blackholed == 0 and messages == 0
        for protocol in ("ls", "dv"):
            ttrs = [cells[(backend, protocol, p)][1] for p in PROPAGATION_NS]
            # convergence takes real time and slower advertisements take longer
            assert all(t > 0 for t in ttrs), f"{backend}/{protocol}: TTR {ttrs}"
            assert ttrs == sorted(ttrs) and ttrs[-1] > ttrs[0]
        for propagation_ns in PROPAGATION_NS:
            # distance-vector pays two exchange rounds per hop: slower than
            # link-state flooding, with exactly twice the message count
            ls_ttr, ls_msgs = (
                cells[(backend, "ls", propagation_ns)][1],
                cells[(backend, "ls", propagation_ns)][3],
            )
            dv_ttr, dv_msgs = (
                cells[(backend, "dv", propagation_ns)][1],
                cells[(backend, "dv", propagation_ns)][3],
            )
            assert dv_ttr > ls_ttr
            assert dv_msgs == 2 * ls_msgs
    # convergence timing is a property of the fabric and the protocol, not
    # of the traffic model: both backends agree bit-exactly
    for protocol in PROTOCOLS:
        for propagation_ns in PROPAGATION_NS:
            lgs = cells[("lgs", protocol, propagation_ns)]
            htsim = cells[("htsim", protocol, propagation_ns)]
            assert lgs[1] == htsim[1], f"{protocol}@{propagation_ns}: TTR disagrees"
            assert lgs[3] == htsim[3], f"{protocol}@{propagation_ns}: messages disagree"


def test_fig_convergence_fat_tree_blackholes(benchmark):
    config = SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=16,
        oversubscription=4.0,
        faults=_fault("tor0->core0", "core0->tor0"),
    )
    cells = run_once(benchmark, _run_grid, config)
    _print_grid(
        "Convergence on a 4:1 fat tree (core uplink fails at 30 us)", cells
    )
    _assert_convergence_invariants(cells)

    for protocol in ("ls", "dv"):
        # packet backend: stale ToRs blackhole live traffic, and a slower
        # control plane loses strictly more packets (retransmissions keep
        # re-entering the black hole until the source ToR learns)
        blackholed = [cells[("htsim", protocol, p)][2] for p in PROPAGATION_NS]
        assert all(b > 0 for b in blackholed), f"{protocol}: {blackholed}"
        assert blackholed == sorted(blackholed) and blackholed[-1] > blackholed[0]
        # the message-level backend models convergence as a capacity ramp,
        # not per-packet forwarding: no packets exist to blackhole
        for propagation_ns in PROPAGATION_NS:
            assert cells[("lgs", protocol, propagation_ns)][2] == 0


def test_fig_convergence_dragonfly_ttr(benchmark):
    # the spare cable joins the two unpopulated groups (ranks fill groups
    # 0-1 of the default 4x4x4 dragonfly); see the module docstring
    config = SimulationConfig(
        topology="dragonfly",
        faults=_fault("g2.r1->g3.r2", "g3.r2->g2.r1"),
    )
    cells = run_once(benchmark, _run_grid, config)
    _print_grid(
        "Convergence on a dragonfly (spare global cable fails at 30 us)", cells
    )
    _assert_convergence_invariants(cells)

    for backend in BACKENDS:
        for propagation_ns in PROPAGATION_NS:
            for protocol in ("ls", "dv"):
                # no rank routes over the spare cable, so convergence costs
                # no packets -- the stale window is real but loss-free
                assert cells[(backend, protocol, propagation_ns)][2] == 0

"""Hierarchical vs flat allreduce on tapered fabrics (collectives benchmark).

The acceptance comparison behind ``docs/collectives.md``: a 32-rank
allreduce swept over flat (ring, Rabenseifner recursive-halving-doubling)
and topology-aware (bucket/2D-ring, two-level ``hier_rs``) algorithms on
a 4:1-oversubscribed fat tree and a dragonfly, on the packet backend.

Asserted shape (the documented winning points):

* on the oversubscribed fat tree, the two-level algorithms (``bucket``,
  ``hier_rs``) beat the flat ring, and the autotuner's pick is the
  measured winner,
* on the dragonfly at 4 MiB, ``hier_rs`` beats every flat algorithm —
  Rabenseifner collapses because its widest rounds put every rank on the
  scarce global links at once.
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table
from repro.network import SimulationConfig
from repro.sweep import collective_sweep

RANKS = 32
ALGORITHMS = ("ring", "recursive_halving_doubling", "bucket", "hier_rs")


def _by_algo(entries, topology, size):
    return {
        e.resolved: e.finish_time_ns
        for e in entries
        if e.topology == topology and e.size == size
    }


@pytest.fixture(scope="module")
def sweep_entries():
    configs = {
        "fat_tree": SimulationConfig(topology="fat_tree", oversubscription=4.0),
        "dragonfly": SimulationConfig(topology="dragonfly"),
    }
    return collective_sweep(
        configs, RANKS, sizes=(262144,), algorithms=ALGORITHMS, backend="htsim"
    )


def test_two_level_beats_flat_ring_on_oversubscribed_fat_tree(sweep_entries):
    times = _by_algo(sweep_entries, "fat_tree", 262144)
    print_table(
        "fat tree 4:1, 256 KiB allreduce (finish us)",
        ["algorithm", "finish_us"],
        [[a, f"{t / 1e3:.1f}"] for a, t in sorted(times.items(), key=lambda kv: kv[1])],
    )
    assert times["hier_rs"] < times["ring"]
    assert times["bucket"] < times["ring"]


def test_hierarchical_beats_every_flat_algorithm_on_dragonfly(sweep_entries):
    times = _by_algo(sweep_entries, "dragonfly", 262144)
    print_table(
        "dragonfly, 256 KiB allreduce (finish us)",
        ["algorithm", "finish_us"],
        [[a, f"{t / 1e3:.1f}"] for a, t in sorted(times.items(), key=lambda kv: kv[1])],
    )
    flat_best = min(times["ring"], times["recursive_halving_doubling"])
    assert times["hier_rs"] < flat_best


def test_autotuner_pick_is_measured_winner_on_fat_tree(sweep_entries):
    fat_tree = [e for e in sweep_entries if e.topology == "fat_tree"]
    winner = min(fat_tree, key=lambda e: e.finish_time_ns)
    assert winner.autotuner_pick == winner.resolved, (
        f"autotuner picked {winner.autotuner_pick}, measured winner {winner.resolved}"
    )


def test_benchmark_hier_allreduce(benchmark):
    """Representative simulation for the wall-clock suite."""
    from repro.collectives import build_collective_schedule, groups_from_topology
    from repro.network.topology import build_topology
    from repro.scheduler import simulate

    config = SimulationConfig(topology="fat_tree", oversubscription=4.0)
    topo = build_topology(config, RANKS)
    schedule = build_collective_schedule(
        "allreduce", "hier_rs", RANKS, 262144,
        groups=groups_from_topology(range(RANKS), topo),
    )
    result = benchmark(lambda: simulate(schedule, backend="htsim", config=config))
    assert result.ops_completed == schedule.num_ops()

"""Ablations over the design choices called out in DESIGN.md.

Not a paper figure: these benches quantify the sensitivity of the toolchain's
predictions to (a) the collective algorithm substituted during GOAL
generation, (b) the NCCL protocol / chunking configuration, and (c) the ECN
marking thresholds of the packet backend — the knobs a user of the toolchain
is most likely to sweep.
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.collectives import CollectiveContext
from repro.collectives import mpi as cmpi
from repro.collectives import nccl as cnccl
from repro.goal import GoalBuilder
from repro.network import SimulationConfig
from repro.schedgen import incast
from repro.scheduler import simulate


def test_ablation_allreduce_algorithm(benchmark):
    """Ring vs recursive-doubling vs reduce+bcast allreduce at two sizes."""

    def run_all():
        rows = []
        for size, label in ((8 << 10, "8 KiB"), (8 << 20, "8 MiB")):
            for name, fn in cmpi.ALLREDUCE_ALGORITHMS.items():
                b = GoalBuilder(16)
                fn(CollectiveContext(b, list(range(16))), size)
                t = simulate(b.build(), backend="lgs").finish_time_ns
                rows.append((label, name, t))
        return rows

    rows = run_once(benchmark, run_all)
    print_table(
        "Ablation  allreduce algorithm (LGS, 16 ranks)",
        ["buffer", "algorithm", "time (us)"],
        [(size, name, f"{t / 1e3:.1f}") for size, name, t in rows],
    )
    by_size = {}
    for size, name, t in rows:
        by_size.setdefault(size, {})[name] = t
    # large buffers favour the bandwidth-optimal ring; the latency-bound
    # recursive doubling must not win the 8 MiB case
    assert by_size["8 MiB"]["ring"] <= by_size["8 MiB"]["recursive_doubling"]


def test_ablation_nccl_protocol(benchmark):
    """NCCL Simple vs LL protocol for one allreduce (LL pays a bandwidth tax)."""

    def run_all():
        out = {}
        for proto in ("Simple", "LL", "LL128"):
            b = GoalBuilder(8)
            cfg = cnccl.NcclConfig(protocol=proto, nchannels=2)
            cnccl.allreduce(CollectiveContext(b, list(range(8))), 8 << 20, cfg)
            out[proto] = simulate(b.build(), backend="lgs").finish_time_ns
        return out

    out = run_once(benchmark, run_all)
    print_table(
        "Ablation  NCCL protocol (8 MiB allreduce, 8 ranks)",
        ["protocol", "time (us)"],
        [(proto, f"{t / 1e3:.1f}") for proto, t in out.items()],
    )
    assert out["LL"] > out["Simple"]


def test_ablation_ecn_thresholds(benchmark):
    """Aggressive vs permissive ECN thresholds under incast."""
    sched = incast(16, 1 << 20, receiver=0, senders=list(range(8, 16)))

    def run_all():
        out = {}
        for kmin, kmax, label in ((0.05, 0.2, "aggressive"), (0.2, 0.8, "paper default"), (0.6, 0.95, "permissive")):
            cfg = SimulationConfig(
                topology="fat_tree",
                nodes_per_tor=8,
                oversubscription=4.0,
                ecn_kmin_frac=kmin,
                ecn_kmax_frac=kmax,
                buffer_size=1 << 17,
            )
            res = simulate(sched, backend="htsim", config=cfg)
            out[label] = (res.finish_time_ns, res.stats.packets_ecn_marked, res.stats.packets_dropped)
        return out

    out = run_once(benchmark, run_all)
    print_table(
        "Ablation  ECN thresholds (incast over 4:1 oversubscribed fabric)",
        ["thresholds", "time (us)", "ECN marks", "drops"],
        [(k, f"{v[0] / 1e3:.1f}", v[1], v[2]) for k, v in out.items()],
    )
    assert out["aggressive"][1] >= out["permissive"][1]

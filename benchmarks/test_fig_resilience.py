"""Degradation curves on a faulty 4:1 fat tree (resilience benchmark).

The paper validates app-centric simulation on healthy fabrics only; this
harness opens the reliability axis: the same all-to-all workload replayed on
a 4:1 oversubscribed fat tree while core capacity is progressively removed
by the fault-injection subsystem (:mod:`repro.network.faults`).

Two curves are measured:

* **explicit core drains** — failing whole core switches (both cable
  directions, every ToR) gives a deterministic capacity story:
  4 -> 3 -> 2 surviving cores.  Slowdown must rise strictly monotonically
  with the drained fraction, and UGAL-style adaptive routing — which picks
  the least-loaded surviving core instead of hashing blindly — must degrade
  less than minimal ECMP at every faulted point,
* **random cable draws** — :func:`repro.sweep.resilience_sweep` over a
  link-failure-rate axis with a fixed seed.  Draws are nested across rates,
  so the curve must be monotone non-decreasing by construction, not just in
  expectation.
"""
from __future__ import annotations

from benchmarks.conftest import print_table, run_once
from repro.network import FaultSchedule, SimulationConfig
from repro.schedgen import all_to_all
from repro.scheduler import simulate
from repro.sweep import resilience_sweep

RANKS = 32  # two 16-host ToRs, 4 cores at 4:1
ROUTINGS = ("minimal", "adaptive")
DRAIN_FRACTIONS = (0.0, 0.25, 0.5)  # fraction of core switches removed


def _config() -> SimulationConfig:
    return SimulationConfig(
        topology="fat_tree", nodes_per_tor=16, oversubscription=4.0
    )


def _drained_cores(fraction: float) -> FaultSchedule:
    """Fail every cable of the first ``fraction * num_cores`` core switches."""
    num_cores = 4
    names = []
    for core in range(int(fraction * num_cores)):
        for tor in (0, 1):
            names += [f"tor{tor}->core{core}", f"core{core}->tor{tor}"]
    return FaultSchedule(failed_links=tuple(names))


def _explicit_curves():
    schedule = all_to_all(RANKS, 1 << 16)
    config = _config()
    curves = {}
    for routing in ROUTINGS:
        finishes = []
        for fraction in DRAIN_FRACTIONS:
            result = simulate(
                schedule,
                backend="htsim",
                config=config.replace(routing=routing, faults=_drained_cores(fraction)),
            )
            finishes.append(result.finish_time_ns)
        curves[routing] = finishes
    return curves


def test_fig_resilience_degradation_curve(benchmark):
    curves = run_once(benchmark, _explicit_curves)

    rows = []
    for routing, finishes in curves.items():
        base = finishes[0]
        for fraction, finish in zip(DRAIN_FRACTIONS, finishes):
            rows.append(
                (routing, f"{fraction:.2f}", f"{finish / 1e6:.3f} ms", f"{finish / base:.3f}x")
            )
    print_table(
        "Degradation curve (all-to-all, 4:1 fat tree, drained core switches)",
        ["routing", "drained fraction", "runtime", "slowdown"],
        rows,
    )

    # slowdown rises strictly monotonically as core capacity is removed
    for routing, finishes in curves.items():
        for healthier, degraded in zip(finishes, finishes[1:]):
            assert degraded > healthier, (
                f"{routing}: expected strictly increasing finish times, got {finishes}"
            )
    # load-aware adaptive routing degrades less than blind ECMP at every
    # faulted point (both absolutely and relative to its own healthy run)
    for idx, fraction in enumerate(DRAIN_FRACTIONS):
        if fraction == 0.0:
            continue
        min_slow = curves["minimal"][idx] / curves["minimal"][0]
        ada_slow = curves["adaptive"][idx] / curves["adaptive"][0]
        assert ada_slow < min_slow, (
            f"at drained fraction {fraction}: adaptive slowdown {ada_slow:.3f} "
            f"should be below minimal's {min_slow:.3f}"
        )
        assert curves["adaptive"][idx] < curves["minimal"][idx]


def test_fig_resilience_random_rate_sweep():
    entries = resilience_sweep(
        all_to_all(RANKS, 1 << 16),
        {"fat_tree_4to1": _config()},
        failure_rates=(0.0, 0.125, 0.25, 0.375),
        routings=("minimal",),
        backend="htsim",
        failure_seed=1,
    )
    print_table(
        "Random-cable failure-rate sweep (nested draws, seed 1)",
        ["rate", "failed links", "runtime", "slowdown"],
        [
            (e.failure_rate, e.failed_links, f"{e.finish_time_ms:.3f} ms", f"{e.slowdown:.3f}x")
            for e in entries
        ],
    )
    # nested draws: higher rates fail supersets of cables, so the curve is
    # monotone non-decreasing cell by cell, and strictly worse at the top
    finishes = [e.finish_time_ns for e in entries]
    assert finishes == sorted(finishes)
    assert finishes[-1] > finishes[0]
    failed = [e.failed_links for e in entries]
    assert failed == sorted(failed) and failed[0] == 0 and failed[-1] > 0

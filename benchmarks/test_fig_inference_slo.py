"""Goodput knee and p999 TTFT blow-up of the inference-serving family.

The production serving signature the paper's training/HPC traces cannot
express: an open-loop request stream pushed through a disaggregated
prefill/decode cluster saturates — goodput tracks offered load below the
nominal capacity knee, then stops growing (and sags as continuous-batching
joins get gated by congested KV transfers), while the p999 time-to-first-
token degrades *super-linearly* past the knee as the prefill queue builds.

Both backends replay the same fixed-seed GOAL schedules, so the curves are
directly comparable; the fabric is deliberately skinny (4 B/ns links,
LogGOPS ``G`` calibrated to match, 64 KiB of KV cache per prompt token) so
the KV-transfer path is a visible share of TTFT.  A second experiment
composes the same below-knee scenario with a :class:`FaultSchedule` that
degrades every ToR<->core cable to quarter capacity — the "serving fleet on
a sick fabric" study — and must show measurably worse p999 and goodput on
both backends.
"""
from __future__ import annotations

from benchmarks.conftest import print_table, run_once
from repro.apps.inference import (
    DEFAULT_TENANTS,
    ServingClusterConfig,
    build_inference_workload,
)
from repro.measurement.serving import SloSpec, compute_serving_metrics
from repro.network import FaultSchedule, SimulationConfig
from repro.network.config import LogGOPSParams
from repro.scheduler import simulate

REQUESTS = 96
SEED = 7
LOAD_FRACTIONS = (0.5, 0.8, 1.6, 2.4)  # of nominal capacity; knee at 1.0
BACKENDS = ("lgs", "htsim")

#: Heavy KV traffic (64 KiB per prompt token -> 8 MiB per request) so the
#: prefill->decode transfer path matters relative to compute.
CLUSTER = ServingClusterConfig(kv_bytes_per_token=65536)

#: A generous deadline: goodput accounting, not deadline-miss accounting —
#: the knee must come from capacity, not from the SLO definition.
SLO = SloSpec(ttft_ns=500_000_000)

#: Every ToR<->core cable at quarter capacity (2 cores, 3 ToRs at 2 hosts
#: per ToR for the 5-rank cluster): the degraded-fabric composition.
_CORE_CABLES = tuple(
    f"tor{t}->core{c}" for t in range(3) for c in range(2)
) + tuple(f"core{c}->tor{t}" for t in range(3) for c in range(2))
DEGRADED = FaultSchedule(degraded_links=tuple((l, 0.25) for l in _CORE_CABLES))


def _config() -> SimulationConfig:
    """Skinny calibrated fabric: LogGOPS ``G`` is the link's ns/byte."""
    return SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=2,
        link_bandwidth=4.0,
        link_latency=500,
        host_overhead=200,
        loggops=LogGOPSParams(L=1000, o=200, g=5, G=0.25, O=0.0, S=0),
        seed=1,
    )


def _run_cell(rate_rps: float, backend: str, faults: FaultSchedule = None):
    plan = build_inference_workload(
        num_requests=REQUESTS, rate_rps=rate_rps, cluster=CLUSTER, seed=SEED
    )
    config = _config()
    if faults is not None:
        config = config.replace(faults=faults)
    result = simulate(
        plan.schedule, backend=backend, config=config, op_groups=plan.op_groups
    )
    return compute_serving_metrics(plan, result, slo=SLO)


def _load_curves():
    capacity = CLUSTER.nominal_capacity_rps(DEFAULT_TENANTS)
    curves = {}
    for backend in BACKENDS:
        curves[backend] = [
            _run_cell(capacity * fraction, backend) for fraction in LOAD_FRACTIONS
        ]
    return capacity, curves


def test_fig_inference_goodput_knee_and_p999_blowup(benchmark):
    capacity, curves = run_once(benchmark, _load_curves)

    rows = []
    for backend in BACKENDS:
        for fraction, m in zip(LOAD_FRACTIONS, curves[backend]):
            rows.append(
                (
                    backend,
                    f"{fraction:.1f}c",
                    f"{m.offered_rps:.0f}/s",
                    f"{m.goodput_rps:.0f}/s",
                    f"{m.ttft_percentiles_ns['p50'] / 1e6:.2f} ms",
                    f"{m.ttft_percentiles_ns['p999'] / 1e6:.2f} ms",
                    f"{m.batch_occupancy['mean_batch']:.2f}",
                )
            )
    print_table(
        f"Goodput vs offered load (nominal capacity ~{capacity:.0f} req/s)",
        ["backend", "load", "offered", "goodput", "ttft p50", "ttft p999", "batch"],
        rows,
    )

    for backend in BACKENDS:
        sub, knee, over, deep = curves[backend]
        # below the knee the system keeps up: goodput tracks offered load
        assert sub.goodput_rps >= 0.85 * sub.offered_rps, (
            f"{backend}: goodput {sub.goodput_rps:.0f} lags offered "
            f"{sub.offered_rps:.0f} below the knee"
        )
        # past the knee goodput saturates: bounded by capacity, and more
        # offered load buys no more good requests
        for m in (over, deep):
            assert m.goodput_rps <= 1.05 * capacity
            assert m.goodput_rps <= 1.05 * knee.goodput_rps, (
                f"{backend}: goodput kept growing past the knee "
                f"({m.goodput_rps:.0f} vs {knee.goodput_rps:.0f})"
            )
        assert deep.goodput_rps <= 1.05 * over.goodput_rps
        # p999 TTFT degrades super-linearly: the growth factor across the
        # knee dwarfs the growth factor below it (same 2x/1.6x load steps)
        p999 = [m.ttft_percentiles_ns["p999"] for m in curves[backend]]
        below_growth = p999[1] / p999[0]
        across_growth = p999[2] / p999[1]
        assert across_growth > 3.0, (
            f"{backend}: p999 grew only {across_growth:.2f}x across the knee"
        )
        assert across_growth > below_growth, (
            f"{backend}: p999 growth did not accelerate past the knee "
            f"({across_growth:.2f}x vs {below_growth:.2f}x)"
        )
        assert p999[3] > p999[2]


def test_fig_inference_degraded_fabric_worsens_p999():
    capacity = CLUSTER.nominal_capacity_rps(DEFAULT_TENANTS)
    rate = capacity * 0.8  # below the knee: headroom the faults then eat
    rows = []
    for backend in BACKENDS:
        healthy = _run_cell(rate, backend)
        degraded = _run_cell(rate, backend, faults=DEGRADED)
        rows.append(
            (
                backend,
                f"{healthy.ttft_percentiles_ns['p999'] / 1e6:.2f} ms",
                f"{degraded.ttft_percentiles_ns['p999'] / 1e6:.2f} ms",
                f"{healthy.goodput_rps:.0f}/s",
                f"{degraded.goodput_rps:.0f}/s",
            )
        )
        assert (
            degraded.ttft_percentiles_ns["p999"]
            > 1.5 * healthy.ttft_percentiles_ns["p999"]
        ), f"{backend}: degraded fabric barely moved p999"
        assert degraded.goodput_rps < healthy.goodput_rps, (
            f"{backend}: degraded fabric did not cost goodput"
        )
    print_table(
        "Same serving scenario, ToR<->core cables at quarter capacity",
        ["backend", "p999 healthy", "p999 degraded", "goodput healthy", "goodput degraded"],
        rows,
    )

"""Fig. 9: trace size comparison — binary GOAL vs Chakra-like traces.

For the AI workloads the harness generates both the compact binary GOAL file
used by ATLAHS and the Chakra-like execution trace consumed by the AstraSim
baseline, and prints their sizes and the Chakra:GOAL ratio (the green labels
of Fig. 9; the paper reports ratios between 1.8x and 10.6x).
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import LlmTrainer
from repro.baselines.astrasim import nsys_to_chakra
from repro.goal import encode_goal
from repro.schedgen import nccl_trace_to_goal


def test_fig9_goal_vs_chakra_sizes(benchmark, small_ai_workloads):
    def build():
        rows = []
        for label, model, par, gpus_per_node in small_ai_workloads:
            report = LlmTrainer(model, par, gpus_per_node=gpus_per_node, iterations=1).trace()
            goal_bytes = len(encode_goal(nccl_trace_to_goal(report, gpus_per_node=gpus_per_node)))
            chakra_bytes = nsys_to_chakra(report).size_bytes()
            rows.append((label, goal_bytes, chakra_bytes))
        return rows

    rows = run_once(benchmark, build)
    print_table(
        "Fig. 9  GOAL vs Chakra trace sizes",
        ["workload", "GOAL (KiB)", "Chakra (KiB)", "Chakra / GOAL"],
        [
            (label, f"{g / 1024:.1f}", f"{c / 1024:.1f}", f"{c / g:.1f}x")
            for label, g, c in rows
        ],
    )

    # shape: GOAL binaries are consistently smaller than the Chakra traces
    for label, goal_bytes, chakra_bytes in rows:
        assert goal_bytes < chakra_bytes, f"{label}: GOAL not smaller than Chakra"

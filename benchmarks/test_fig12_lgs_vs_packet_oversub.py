"""Fig. 12: ATLAHS LGS vs ATLAHS htsim under topology oversubscription.

The message-level backend is congestion-oblivious: it keeps the same
prediction whether or not the ToR→core links are oversubscribed, while the
packet-level backend sees queueing and drops on the shared uplinks.  The
harness prints both predictions for a Llama-like training workload on the
fully provisioned and the 4:1 oversubscribed fat tree, plus the packet drops
that only the packet-level backend can report (right panel of Fig. 12).
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.network import LogGOPSParams, SimulationConfig
from repro.schedgen import nccl_trace_to_goal
from repro.scheduler import simulate


def _schedule():
    model = llama_7b().scaled(0.04)
    par = ParallelismConfig(tp=1, pp=1, dp=16, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=1, iterations=1).trace()
    return nccl_trace_to_goal(report, gpus_per_node=1)


def test_fig12_lgs_vs_packet_under_oversubscription(benchmark):
    schedule = _schedule()
    lgs_cfg = SimulationConfig(loggops=LogGOPSParams(L=1500, o=200, g=5, G=0.04, O=0.0, S=0))

    def packet_cfg(oversub):
        return SimulationConfig(
            topology="fat_tree",
            nodes_per_tor=4,
            oversubscription=oversub,
            buffer_size=1 << 17,
            seed=5,
        )

    def run_all():
        t_lgs = simulate(schedule, backend="lgs", config=lgs_cfg).finish_time_ns
        out = {}
        for oversub, label in ((1.0, "no oversubscription"), (4.0, "4:1 oversubscription")):
            res = simulate(schedule, backend="htsim", config=packet_cfg(oversub))
            out[label] = (t_lgs, res.finish_time_ns, res.stats.packets_dropped, res.stats.packets_ecn_marked)
        return out

    results = run_once(benchmark, run_all)
    rows = []
    for label, (t_lgs, t_pkt, drops, marks) in results.items():
        gap = (t_lgs - t_pkt) / t_pkt
        rows.append(
            (label, f"{t_lgs / 1e6:.2f} ms", f"{t_pkt / 1e6:.2f} ms", f"{gap * 100:+.1f}%", drops, marks)
        )
    print_table(
        "Fig. 12  LGS vs packet backend under oversubscription",
        ["topology", "ATLAHS LGS", "ATLAHS htsim", "LGS error vs htsim", "packet drops", "ECN marks"],
        rows,
    )

    t_lgs, t_full, _, _ = results["no oversubscription"]
    _, t_over, drops_over, marks_over = results["4:1 oversubscription"]
    gap_full = abs(t_lgs - t_full) / t_full
    gap_over = abs(t_lgs - t_over) / t_over
    # shape: LGS is accurate on the fully provisioned fabric and increasingly
    # wrong under oversubscription, where the packet backend observes
    # congestion signals that LGS cannot see
    assert t_over > t_full
    assert gap_over > gap_full
    assert drops_over + marks_over > 0

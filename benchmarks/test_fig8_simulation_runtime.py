"""§5.2 simulator-runtime comparison: ATLAHS LGS vs AstraSim vs ATLAHS htsim.

The paper reports ATLAHS-LGS simulating the same workload 13.9x / 2.7x faster
than AstraSim's congestion-unaware backend, with the packet-level backend
being far slower than both.  This harness measures wall-clock simulation time
of the three simulators on the same data-parallel workload (the only kind the
baseline supports).
"""
from __future__ import annotations

import time

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.baselines.astrasim import AstraSimBaseline, nsys_to_chakra
from repro.network import LogGOPSParams, SimulationConfig
from repro.schedgen import nccl_trace_to_goal
from repro.scheduler import simulate


def test_fig8_simulation_runtime(benchmark):
    model = llama_7b().scaled(0.05)
    par = ParallelismConfig(tp=1, pp=1, dp=16, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=4, iterations=1).trace()
    schedule = nccl_trace_to_goal(report, gpus_per_node=4)
    chakra = nsys_to_chakra(report)

    lgs_cfg = SimulationConfig(loggops=LogGOPSParams.ai_cluster())
    pkt_cfg = SimulationConfig(topology="fat_tree", nodes_per_tor=4)

    def run_all():
        timings = {}
        t0 = time.perf_counter()
        simulate(schedule, backend="lgs", config=lgs_cfg, validate=False)
        timings["ATLAHS LGS"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        AstraSimBaseline().simulate(chakra)
        timings["AstraSim (congestion unaware)"] = time.perf_counter() - t0

        t0 = time.perf_counter()
        simulate(schedule, backend="htsim", config=pkt_cfg, validate=False)
        timings["ATLAHS htsim"] = time.perf_counter() - t0
        return timings

    timings = run_once(benchmark, run_all)
    speedup = timings["AstraSim (congestion unaware)"] / timings["ATLAHS LGS"]
    print_table(
        "Fig. 8 (text)  simulation wall-clock time, Llama 7B DP16",
        ["simulator", "wall clock (s)", "vs ATLAHS LGS"],
        [
            (name, f"{t:.3f}", f"{t / timings['ATLAHS LGS']:.1f}x")
            for name, t in timings.items()
        ],
    )
    print(f"ATLAHS LGS speedup over AstraSim: {speedup:.1f}x")

    # Shape note: the paper reports ATLAHS LGS simulating 2.7-13.9x faster than
    # the real AstraSim.  Our from-scratch baseline is far simpler than the real
    # system (it keeps collectives as single analytical nodes), so it does
    # strictly less work than a real AstraSim run and this particular ordering
    # is NOT expected to reproduce (see EXPERIMENTS.md).  The robust shape is
    # that the packet-level backend is the slowest simulator by a wide margin.
    assert timings["ATLAHS htsim"] >= timings["ATLAHS LGS"]
    assert timings["ATLAHS htsim"] >= timings["AstraSim (congestion unaware)"]

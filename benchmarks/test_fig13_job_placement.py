"""Fig. 13: effect of the job-placement strategy on co-located applications.

An AI training job (Llama-like) and an HPC job (LULESH) share a 4:1
oversubscribed fat tree.  The harness simulates both jobs under a packed and
a random allocation with the packet backend and prints each job's runtime and
its slowdown relative to the packed allocation (the paper reports +36% for
Llama and +2% for LULESH).
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.apps.hpc import HPC_APPLICATIONS, HpcRunConfig
from repro.network import SimulationConfig
from repro.placement import JobRequest, place_jobs
from repro.schedgen import mpi_trace_to_goal, nccl_trace_to_goal
from repro.scheduler import simulate

CLUSTER_NODES = 16


def _jobs():
    model = llama_7b().scaled(0.04)
    par = ParallelismConfig(tp=1, pp=1, dp=8, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=1, iterations=1).trace()
    llama_sched = nccl_trace_to_goal(report, gpus_per_node=1)

    trace = HPC_APPLICATIONS["lulesh"].trace(HpcRunConfig(num_ranks=8, iterations=3, cells_per_rank=16_000))
    lulesh_sched = mpi_trace_to_goal(trace)
    return [JobRequest(llama_sched, name="Llama"), JobRequest(lulesh_sched, name="LULESH")]


def _config():
    return SimulationConfig(
        topology="fat_tree", nodes_per_tor=4, oversubscription=4.0, cc_algorithm="mprdma", seed=11
    )


def _job_runtimes(result, placement, jobs):
    return [
        max(result.rank_finish_times_ns[n] for n in placement.nodes_of_job(i))
        for i in range(len(jobs))
    ]


def test_fig13_job_placement(benchmark):
    jobs = _jobs()

    def run_all():
        runtimes = {}
        for strategy, kwargs in (("packed", {}), ("random", {"seed": 3})):
            placement = place_jobs(jobs, CLUSTER_NODES, strategy=strategy, **kwargs)
            merged = placement.merged_schedule(jobs)
            result = simulate(merged, backend="htsim", config=_config())
            runtimes[strategy] = _job_runtimes(result, placement, jobs)
        return runtimes

    runtimes = run_once(benchmark, run_all)
    rows = []
    for i, job in enumerate(jobs):
        packed = runtimes["packed"][i]
        random_ = runtimes["random"][i]
        rows.append(
            (
                job.label,
                f"{packed / 1e6:.2f} ms",
                f"{random_ / 1e6:.2f} ms",
                f"{(random_ / packed - 1) * 100:+.0f}%",
            )
        )
    print_table(
        "Fig. 13  packed vs random allocation (4:1 oversubscribed fat tree)",
        ["job", "packed", "random", "slowdown"],
        rows,
    )

    llama_slowdown = runtimes["random"][0] / runtimes["packed"][0] - 1
    lulesh_slowdown = runtimes["random"][1] / runtimes["packed"][1] - 1
    # shape: the communication-heavy AI job suffers substantially more from
    # losing locality than the compute-dominated HPC job
    assert llama_slowdown > 0.05
    assert llama_slowdown > lulesh_slowdown
    assert lulesh_slowdown < 0.15

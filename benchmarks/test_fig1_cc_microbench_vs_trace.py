"""Fig. 1(C): Swift vs MPRDMA on synthetic microbenchmarks vs an LLM trace.

The paper's motivating example: under incast and permutation microbenchmarks
the two congestion-control algorithms look equivalent, but a realistic LLM
training trace (overlapping DP allreduce and PP traffic on a two-level fat
tree) exposes Swift's weakness with multi-hop congestion.  The table printed
here reports, per workload, the completion time under each algorithm and the
relative difference (negative = Swift slower), mirroring the green/red
percentages of Fig. 1(C).
"""
from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, run_once
from repro.apps.ai import LlmTrainer, ParallelismConfig, llama_7b
from repro.network import SimulationConfig
from repro.schedgen import incast, nccl_trace_to_goal, permutation
from repro.scheduler import simulate

NUM_NODES = 16
MSG_SIZE = 1 << 20


def _network(cc: str) -> SimulationConfig:
    return SimulationConfig(
        topology="fat_tree",
        nodes_per_tor=4,
        oversubscription=2.0,
        cc_algorithm=cc,
        buffer_size=1 << 18,
        seed=1,
    )


def _llm_schedule():
    model = llama_7b().scaled(0.03)
    par = ParallelismConfig(tp=1, pp=2, dp=8, microbatches=2, global_batch=32)
    report = LlmTrainer(model, par, gpus_per_node=1, iterations=1).trace()
    return nccl_trace_to_goal(report, gpus_per_node=1)


def _workloads():
    return [
        ("incast microbenchmark", incast(NUM_NODES, MSG_SIZE, receiver=0, senders=list(range(4, 16)))),
        ("permutation microbenchmark", permutation(NUM_NODES, MSG_SIZE, seed=5)),
        ("LLM training trace (DP+PP)", _llm_schedule()),
    ]


def test_fig1c_swift_vs_mprdma(benchmark):
    rows = []
    shapes = {}
    workloads = _workloads()

    def run_all():
        results = {}
        for label, sched in workloads:
            t_mprdma = simulate(sched, backend="htsim", config=_network("mprdma")).finish_time_ns
            t_swift = simulate(sched, backend="htsim", config=_network("swift")).finish_time_ns
            results[label] = (t_mprdma, t_swift)
        return results

    results = run_once(benchmark, run_all)
    for label, (t_mprdma, t_swift) in results.items():
        swift_vs_mprdma = (t_mprdma - t_swift) / t_swift  # >0: Swift faster
        rows.append(
            (
                label,
                f"{t_mprdma / 1e6:.2f} ms",
                f"{t_swift / 1e6:.2f} ms",
                f"{swift_vs_mprdma * +100:+.1f}%",
            )
        )
        shapes[label] = swift_vs_mprdma

    print_table(
        "Fig. 1(C)  Swift vs MPRDMA (positive = Swift faster)",
        ["workload", "MPRDMA", "Swift", "Swift advantage"],
        rows,
    )

    # shape check: on the realistic trace Swift must not outperform MPRDMA by
    # more than it does on the microbenchmarks (the paper reports ~-4% there)
    micro_adv = max(shapes["incast microbenchmark"], shapes["permutation microbenchmark"])
    assert shapes["LLM training trace (DP+PP)"] <= micro_adv + 0.05

"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation at laptop scale: it prints the same rows/series the paper reports
(so the *shape* — who wins, by roughly what factor, where crossovers fall —
can be compared) and registers one representative simulation with
pytest-benchmark so ``pytest benchmarks/ --benchmark-only`` also reports
simulator wall-clock times.

Workload scales are deliberately reduced (see DESIGN.md §3); the knobs at the
top of each module can be raised to approach the paper's sizes.
"""
from __future__ import annotations

from typing import Iterable, List, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print one experiment table in a fixed-width layout."""
    rows = [tuple(str(c) for c in row) for row in rows]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(header))
    print()
    print(f"=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark (no warm-up rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def small_ai_workloads():
    """Scaled-down versions of the paper's Fig. 8 AI workloads."""
    from repro.apps.ai import ParallelismConfig, llama_7b, llama_70b, mistral_8x7b, moe_8x13b

    return [
        # (label, model, parallelism, gpus_per_node)
        (
            "Llama 7B  16 GPUs (TP1 PP1 DP16)",
            llama_7b().scaled(0.04),
            ParallelismConfig(tp=1, pp=1, dp=16, microbatches=2, global_batch=32),
            4,
        ),
        (
            "Llama 70B  16 GPUs (TP1 PP4 DP4)",
            llama_70b().scaled(0.02),
            ParallelismConfig(tp=1, pp=4, dp=4, microbatches=4, global_batch=32),
            4,
        ),
        (
            "Mistral 8x7B  16 GPUs (TP1 PP2 DP8 EP2)",
            mistral_8x7b().scaled(0.03),
            ParallelismConfig(tp=1, pp=2, dp=8, ep=2, microbatches=2, global_batch=32),
            4,
        ),
        (
            "MoE 8x13B  16 GPUs (TP2 PP2 DP4 EP4)",
            moe_8x13b().scaled(0.03),
            ParallelismConfig(tp=2, pp=2, dp=4, ep=4, microbatches=2, global_batch=32),
            4,
        ),
    ]
